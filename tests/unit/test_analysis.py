"""The invariant checker: framework mechanics and every shipped rule.

Fixture-driven: each rule gets inline source snippets that must fire
(with line-accurate findings) and near-miss snippets that must not.
Framework tests cover pragma suppression, baseline round-trips, output
formats and scoping; the integration class at the bottom runs the real
CLI over the real tree and requires it clean — the same gate CI applies.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_PATHS,
    FINGERPRINT_PATH,
    Finding,
    GlobalRandomRule,
    SetIterationRule,
    SlotsRule,
    WallClockRule,
    compute_fingerprint,
    default_rules,
    filter_baselined,
    load_baseline,
    main,
    run_analysis,
    save_baseline,
)
from repro.analysis.cli import _render
from repro.analysis.schema import SchemaVersionRule, write_fingerprint

REPO = Path(__file__).resolve().parents[2]


def check_snippet(rule, source, tmp_path, name="snippet.py"):
    """Run one rule (scope widened to everything) over one source
    snippet; return its findings."""
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    rule.scope = ()
    return run_analysis([path], rules=[rule], root=tmp_path)


# ----------------------------------------------------------------------
# DET01 — process-global RNG
# ----------------------------------------------------------------------
class TestDet01:
    def test_global_function_call_fires(self, tmp_path):
        findings = check_snippet(
            GlobalRandomRule(),
            """
            import random

            def jitter():
                return random.uniform(0.0, 1.0)
            """,
            tmp_path,
        )
        assert [f.rule for f in findings] == ["DET01"]
        assert findings[0].line == 5
        assert "process-global RNG" in findings[0].message

    def test_unseeded_random_fires_seeded_does_not(self, tmp_path):
        findings = check_snippet(
            GlobalRandomRule(),
            """
            import random

            bad = random.Random()
            good = random.Random(42)
            also_good = random.Random(seed=42)
            """,
            tmp_path,
        )
        assert [(f.rule, f.line) for f in findings] == [("DET01", 4)]
        assert "explicit seed" in findings[0].message

    def test_aliased_and_from_imports_resolved(self, tmp_path):
        findings = check_snippet(
            GlobalRandomRule(),
            """
            import random as rnd
            from random import shuffle, Random

            def scramble(xs):
                rnd.shuffle(xs)
                shuffle(xs)
                return Random()
            """,
            tmp_path,
        )
        assert [f.line for f in findings] == [6, 7, 8]

    def test_injected_rng_is_clean(self, tmp_path):
        findings = check_snippet(
            GlobalRandomRule(),
            """
            import random

            def sample(rng: random.Random):
                return rng.random() + rng.uniform(0, 1)
            """,
            tmp_path,
        )
        assert findings == []


# ----------------------------------------------------------------------
# DET02 — wall clock
# ----------------------------------------------------------------------
class TestDet02:
    def test_time_and_datetime_reads_fire(self, tmp_path):
        findings = check_snippet(
            WallClockRule(),
            """
            import time
            from datetime import datetime

            def stamp():
                return time.perf_counter(), time.time(), datetime.now()
            """,
            tmp_path,
        )
        assert len(findings) == 3
        assert {f.rule for f in findings} == {"DET02"}
        assert "host clock" in findings[0].message

    def test_sim_time_is_clean(self, tmp_path):
        findings = check_snippet(
            WallClockRule(),
            """
            import time

            def airtime(sim, frame, bitrate):
                # time.* the module is fine to import; only clock reads fire
                start = sim.now
                return start + frame.wire_bytes() * 8.0 / bitrate
            """,
            tmp_path,
        )
        assert findings == []

    def test_scope_excludes_out_of_scope_files(self):
        rule = WallClockRule()
        assert rule.applies_to("src/repro/sim/kernel.py")
        assert rule.applies_to("src/repro/experiments/runner.py")
        assert not rule.applies_to("src/repro/experiments/export.py")
        assert not rule.applies_to("src/repro/service/loadtest.py")


# ----------------------------------------------------------------------
# DET03 — set iteration
# ----------------------------------------------------------------------
class TestDet03:
    def test_for_over_set_display_fires(self, tmp_path):
        findings = check_snippet(
            SetIterationRule(),
            """
            def visit(nodes):
                for n in {3, 1, 2}:
                    yield n
                out = [x for x in {n for n in nodes}]
                for m in set(nodes):
                    yield m
                return out
            """,
            tmp_path,
        )
        assert [f.line for f in findings] == [3, 5, 6]

    def test_sorted_and_membership_are_clean(self, tmp_path):
        findings = check_snippet(
            SetIterationRule(),
            """
            def visit(nodes):
                for n in sorted(set(nodes)):
                    yield n
                if 3 in {1, 2, 3}:
                    yield -1
                targets = {1, 2} - {2}
                return targets
            """,
            tmp_path,
        )
        assert findings == []


# ----------------------------------------------------------------------
# PERF01 — __slots__ in hot modules
# ----------------------------------------------------------------------
class TestPerf01:
    def test_unslotted_class_fires(self, tmp_path):
        findings = check_snippet(
            SlotsRule(),
            """
            class Hot:
                def __init__(self):
                    self.x = 1
            """,
            tmp_path,
        )
        assert [(f.rule, f.line) for f in findings] == [("PERF01", 2)]
        assert "Hot" in findings[0].message

    def test_slots_dataclass_enum_protocol_exception_clean(self, tmp_path):
        findings = check_snippet(
            SlotsRule(),
            """
            import enum
            from dataclasses import dataclass
            from typing import Protocol

            class Slotted:
                __slots__ = ("x",)

            @dataclass(slots=True)
            class Record:
                x: int = 0

            class Kind(enum.Enum):
                A = 1

            class Listener(Protocol):
                def on_receive(self, frame): ...

            class BoomError(RuntimeError):
                pass
            """,
            tmp_path,
        )
        assert findings == []

    def test_plain_dataclass_fires_and_allowlist_exempts(self, tmp_path):
        source = """
            from dataclasses import dataclass

            @dataclass
            class Config:
                x: int = 0
            """
        assert len(check_snippet(SlotsRule(), source, tmp_path)) == 1
        assert (
            check_snippet(
                SlotsRule(allow=frozenset({"Config"})), source, tmp_path
            )
            == []
        )

    def test_hot_module_scope(self):
        rule = SlotsRule()
        assert rule.applies_to("src/repro/sim/kernel.py")
        assert rule.applies_to("src/repro/core/node.py")
        assert not rule.applies_to("src/repro/core/basestation.py")


# ----------------------------------------------------------------------
# SCHEMA01 — version-bump discipline
# ----------------------------------------------------------------------
def write_schema_tree(
    root,
    spec_version=3,
    protocol_version=1,
    spec_extra="",
    wire_extra="",
    default="0",
):
    (root / "src/repro/experiments").mkdir(parents=True, exist_ok=True)
    (root / "src/repro/sim").mkdir(parents=True, exist_ok=True)
    (root / "src/repro/service").mkdir(parents=True, exist_ok=True)
    (root / "src/repro/experiments/runner.py").write_text(
        textwrap.dedent(
            f"""
            from dataclasses import dataclass

            SPEC_SCHEMA_VERSION = {spec_version}

            @dataclass
            class ExperimentSpec:
                policy: str = "scoop"
                seed: int = {default}
                {spec_extra or "pass"}

            @dataclass
            class ExperimentResult:
                total_messages: float = 0.0
            """
        )
    )
    (root / "src/repro/sim/metrics.py").write_text(
        textwrap.dedent(
            """
            from dataclasses import dataclass

            @dataclass
            class TrialMetrics:
                messages: dict = None
            """
        )
    )
    (root / "src/repro/service/api.py").write_text(
        textwrap.dedent(
            f"""
            from dataclasses import dataclass

            PROTOCOL_VERSION = {protocol_version}

            @dataclass(frozen=True)
            class QueryRequest:
                tenant: str = "tenant0"
                {wire_extra or "pass"}

            @dataclass(frozen=True)
            class QueryAnswer:
                tenant: str = ""

            @dataclass(frozen=True)
            class ServiceError:
                code: str = ""

            @dataclass(frozen=True)
            class ServiceStats:
                tenants: dict = None
            """
        )
    )


class TestSchema01:
    def test_clean_when_fingerprint_matches(self, tmp_path):
        write_schema_tree(tmp_path)
        fp = tmp_path / "fingerprint.json"
        write_fingerprint(tmp_path, path=fp)
        rule = SchemaVersionRule(fingerprint_path=fp)
        assert list(rule.check_project(tmp_path)) == []

    def test_spec_field_change_without_bump_fires(self, tmp_path):
        write_schema_tree(tmp_path)
        fp = tmp_path / "fingerprint.json"
        write_fingerprint(tmp_path, path=fp)
        write_schema_tree(tmp_path, spec_extra="churn_rate: float = 0.0")
        findings = list(
            SchemaVersionRule(fingerprint_path=fp).check_project(tmp_path)
        )
        assert [f.rule for f in findings] == ["SCHEMA01"]
        assert "without a SPEC_SCHEMA_VERSION bump" in findings[0].message
        assert "ExperimentSpec" in findings[0].message
        assert findings[0].path.endswith("runner.py")

    def test_default_change_counts_as_schema_change(self, tmp_path):
        write_schema_tree(tmp_path, default="0")
        fp = tmp_path / "fingerprint.json"
        write_fingerprint(tmp_path, path=fp)
        write_schema_tree(tmp_path, default="7")
        findings = list(
            SchemaVersionRule(fingerprint_path=fp).check_project(tmp_path)
        )
        assert len(findings) == 1
        assert "without a SPEC_SCHEMA_VERSION bump" in findings[0].message

    def test_bump_with_refresh_is_clean_without_refresh_fires(self, tmp_path):
        write_schema_tree(tmp_path)
        fp = tmp_path / "fingerprint.json"
        write_fingerprint(tmp_path, path=fp)
        # schema change + version bump, fingerprint not yet refreshed:
        write_schema_tree(
            tmp_path, spec_version=4, spec_extra="churn_rate: float = 0.0"
        )
        rule = SchemaVersionRule(fingerprint_path=fp)
        findings = list(rule.check_project(tmp_path))
        assert len(findings) == 1
        assert "fingerprint is stale" in findings[0].message
        # refreshing in the same tree makes it clean:
        write_fingerprint(tmp_path, path=fp)
        assert list(rule.check_project(tmp_path)) == []

    def test_wire_change_without_protocol_bump_fires(self, tmp_path):
        write_schema_tree(tmp_path)
        fp = tmp_path / "fingerprint.json"
        write_fingerprint(tmp_path, path=fp)
        write_schema_tree(tmp_path, wire_extra="priority: int = 0")
        findings = list(
            SchemaVersionRule(fingerprint_path=fp).check_project(tmp_path)
        )
        assert len(findings) == 1
        assert "without a PROTOCOL_VERSION bump" in findings[0].message
        assert findings[0].path.endswith("api.py")

    def test_missing_fingerprint_fires(self, tmp_path):
        write_schema_tree(tmp_path)
        findings = list(
            SchemaVersionRule(
                fingerprint_path=tmp_path / "absent.json"
            ).check_project(tmp_path)
        )
        assert len(findings) == 1
        assert "no committed schema fingerprint" in findings[0].message


# ----------------------------------------------------------------------
# Framework: pragmas, baselines, formats, engine
# ----------------------------------------------------------------------
class TestPragmas:
    def test_same_line_pragma_with_reason_suppresses(self, tmp_path):
        findings = check_snippet(
            WallClockRule(),
            """
            import time

            t = time.time()  # repro: allow[DET02] measuring real IO latency
            """,
            tmp_path,
        )
        assert findings == []

    def test_line_above_pragma_suppresses(self, tmp_path):
        findings = check_snippet(
            WallClockRule(),
            """
            import time

            # repro: allow[DET02] measuring real IO latency
            t = time.time()
            """,
            tmp_path,
        )
        assert findings == []

    def test_pragma_without_reason_does_not_suppress(self, tmp_path):
        findings = check_snippet(
            WallClockRule(),
            """
            import time

            t = time.time()  # repro: allow[DET02]
            """,
            tmp_path,
        )
        assert len(findings) == 1

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        findings = check_snippet(
            WallClockRule(),
            """
            import time

            t = time.time()  # repro: allow[DET01] wrong rule named
            """,
            tmp_path,
        )
        assert len(findings) == 1

    def test_comma_list_covers_both_rules(self, tmp_path):
        path = tmp_path / "both.py"
        path.write_text(
            textwrap.dedent(
                """
                import time
                import random

                # repro: allow[DET01, DET02] fixture exercising both rules
                x = random.random() + time.time()
                """
            )
        )
        det1, det2 = GlobalRandomRule(), WallClockRule()
        det1.scope = det2.scope = ()
        assert run_analysis([path], rules=[det1, det2], root=tmp_path) == []


class TestBaseline:
    def two_findings(self):
        return [
            Finding(path="a.py", line=3, rule="DET01", message="m1"),
            Finding(path="b.py", line=9, rule="PERF01", message="m2"),
        ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, self.two_findings())
        assert load_baseline(path) == sorted(self.two_findings())

    def test_filter_matches_on_rule_path_message_not_line(self, tmp_path):
        baseline = self.two_findings()
        drifted = [
            Finding(path="a.py", line=30, rule="DET01", message="m1"),
            Finding(path="a.py", line=4, rule="DET01", message="new one"),
        ]
        fresh = filter_baselined(drifted, baseline)
        assert [f.message for f in fresh] == ["new one"]

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError):
            load_baseline(path)


class TestEngineAndFormats:
    def test_github_format_annotations(self):
        findings = [Finding(path="a.py", line=3, rule="DET01", message="msg")]
        out = _render(findings, "github")
        assert out == "::error file=a.py,line=3,title=DET01::msg"
        assert _render(findings, "text") == "a.py:3: DET01 msg"

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        rule = WallClockRule()
        rule.scope = ()
        findings = run_analysis([bad], rules=[rule], root=tmp_path)
        assert [f.rule for f in findings] == ["PARSE"]

    def test_pycache_skipped_and_findings_sorted(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "z.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "a.py").write_text("import time\nt = time.time()\n")
        rule = WallClockRule()
        rule.scope = ()
        findings = run_analysis([tmp_path], rules=[rule], root=tmp_path)
        assert [f.path for f in findings] == ["a.py", "z.py"]


# ----------------------------------------------------------------------
# The real tree: checker-clean on HEAD, CLI exit codes, hygiene guards
# ----------------------------------------------------------------------
class TestCheckerOnHead:
    def test_head_is_clean(self, capsys):
        """The acceptance gate: zero non-pragma'd findings on the tree,
        through the same entry point CI calls."""
        rc = main([str(REPO / p) for p in DEFAULT_PATHS])
        assert rc == 0, capsys.readouterr().out

    def test_committed_fingerprint_is_current(self):
        committed = json.loads(FINGERPRINT_PATH.read_text())
        assert committed == compute_fingerprint(REPO)

    def test_write_baseline_then_filtered_run(self, tmp_path, capsys):
        offender = tmp_path / "hot.py"
        offender.write_text("import time\nt = time.time()\n")
        baseline = tmp_path / "baseline.json"
        # A scoped CLI run on the offender alone would pass (out of
        # scope), so drive the engine the way the CLI does instead.
        rule = WallClockRule(scope=("hot.py",))
        findings = run_analysis([offender], rules=[rule], root=tmp_path)
        assert len(findings) == 1
        save_baseline(baseline, findings)
        again = run_analysis([offender], rules=[rule], root=tmp_path)
        assert filter_baselined(again, load_baseline(baseline)) == []

    def test_cli_unknown_path_is_usage_error(self, capsys):
        assert main(["definitely/not/a/path"]) == 2

    def test_default_rules_cover_the_shipped_family(self):
        ids = {r.rule_id for r in default_rules()}
        assert ids == {"DET01", "DET02", "DET03", "PERF01", "BND01", "SCHEMA01"}


class TestTreeHygiene:
    def test_gitignore_covers_bytecode(self):
        ignored = (REPO / ".gitignore").read_text()
        assert "__pycache__/" in ignored
        assert "*.pyc" in ignored

    def test_no_tracked_bytecode(self):
        """CI asserts this too; the test keeps it enforced locally."""
        try:
            tracked = subprocess.run(
                ["git", "ls-files"],
                cwd=REPO,
                capture_output=True,
                text=True,
                check=True,
                timeout=30,
            ).stdout.splitlines()
        except (OSError, subprocess.SubprocessError):
            pytest.skip("git unavailable")
        litter = [
            f
            for f in tracked
            if "__pycache__" in f.split("/") or f.endswith(".pyc")
        ]
        assert litter == []

    def test_checker_runs_under_this_interpreter(self):
        """`python -m repro.analysis --list-rules` works as a subprocess
        (the exact invocation CI and the README quickstart use)."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            cwd=REPO,
            capture_output=True,
            text=True,
            timeout=120,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        for rule_id in ("DET01", "DET02", "DET03", "PERF01", "BND01", "SCHEMA01"):
            assert rule_id in proc.stdout
