"""Unit tests for the storage index: lookup, compaction, chunking."""

import pytest

from repro.core.config import ValueDomain
from repro.core.messages import MAX_ENTRIES_PER_CHUNK
from repro.core.storage_index import STORE_LOCAL, RangeEntry, StorageIndex


DOMAIN = ValueDomain(0, 9)


def simple_index(sid=1):
    owners = [1, 1, 1, 2, 2, 3, 3, 3, 3, 1]
    return StorageIndex.single_owner(sid, DOMAIN, owners)


class TestLookup:
    def test_owner_of(self):
        index = simple_index()
        assert index.owner_of(0) == 1
        assert index.owner_of(4) == 2
        assert index.owner_of(8) == 3

    def test_out_of_domain_rejected(self):
        with pytest.raises(ValueError):
            simple_index().owner_of(10)

    def test_values_owned_by(self):
        index = simple_index()
        assert index.values_owned_by(2) == [3, 4]
        assert index.values_owned_by(1) == [0, 1, 2, 9]
        assert index.values_owned_by(99) == []

    def test_owners_for_range(self):
        index = simple_index()
        assert index.owners_for_range(3, 6) == frozenset({2, 3})
        assert index.owners_for_range(-5, 100) == frozenset({1, 2, 3})

    def test_all_owners(self):
        assert simple_index().all_owners() == frozenset({1, 2, 3})

    def test_uniform_is_send_to_base(self):
        index = StorageIndex.uniform(1, DOMAIN, 0)
        assert index.is_send_to_base(0)
        assert not simple_index().is_send_to_base(0)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            StorageIndex.single_owner(1, DOMAIN, [1, 2])

    def test_empty_owner_set_rejected(self):
        with pytest.raises(ValueError):
            StorageIndex(1, DOMAIN, [()] * DOMAIN.size)


class TestCompaction:
    def test_coalesces_consecutive(self):
        entries = simple_index().compact()
        assert [(e.lo, e.hi, e.owners) for e in entries] == [
            (0, 2, (1,)),
            (3, 4, (2,)),
            (5, 8, (3,)),
            (9, 9, (1,)),
        ]

    def test_single_owner_one_range(self):
        index = StorageIndex.uniform(1, DOMAIN, 7)
        entries = index.compact()
        assert len(entries) == 1
        assert entries[0] == RangeEntry(0, 9, (7,))

    def test_alternating_owners_max_ranges(self):
        owners = [1, 2] * 5
        index = StorageIndex.single_owner(1, DOMAIN, owners)
        assert len(index.compact()) == 10

    def test_range_entry_validation(self):
        with pytest.raises(ValueError):
            RangeEntry(5, 3, (1,))
        with pytest.raises(ValueError):
            RangeEntry(1, 2, ())


class TestChunking:
    def test_roundtrip(self):
        index = simple_index(sid=7)
        chunks = index.to_chunks()
        rebuilt = StorageIndex.from_chunks(DOMAIN, chunks)
        assert rebuilt == index

    def test_chunk_size_limit(self):
        owners = list(range(1, 11))  # 10 distinct ranges
        index = StorageIndex.single_owner(3, DOMAIN, owners)
        chunks = index.to_chunks(max_entries=3)
        assert all(len(c.entries) <= 3 for c in chunks)
        assert StorageIndex.from_chunks(DOMAIN, chunks) == index

    def test_default_chunk_capacity(self):
        index = simple_index()
        chunks = index.to_chunks()
        assert all(len(c.entries) <= MAX_ENTRIES_PER_CHUNK for c in chunks)

    def test_missing_chunk_rejected(self):
        chunks = StorageIndex.single_owner(1, DOMAIN, list(range(1, 11))).to_chunks(
            max_entries=2
        )
        with pytest.raises(ValueError):
            StorageIndex.from_chunks(DOMAIN, chunks[:-1])

    def test_mixed_sids_rejected(self):
        a = simple_index(sid=1).to_chunks()
        b = simple_index(sid=2).to_chunks()
        with pytest.raises(ValueError):
            StorageIndex.from_chunks(DOMAIN, [b[0]] + a[1:]) if len(a) > 1 else (
                _ for _ in ()
            ).throw(ValueError())

    def test_empty_chunks_rejected(self):
        with pytest.raises(ValueError):
            StorageIndex.from_chunks(DOMAIN, [])

    def test_owner_sets_roundtrip(self):
        owners = [(1, 2)] * 5 + [(3,)] * 5
        index = StorageIndex(4, DOMAIN, owners)
        rebuilt = StorageIndex.from_chunks(DOMAIN, index.to_chunks())
        for v in DOMAIN:
            assert set(rebuilt.owners_of(v)) == set(index.owners_of(v))


class TestSimilarity:
    def test_identical_is_one(self):
        assert simple_index(1).similarity(simple_index(2)) == 1.0

    def test_disjoint_is_zero(self):
        a = StorageIndex.uniform(1, DOMAIN, 1)
        b = StorageIndex.uniform(2, DOMAIN, 2)
        assert a.similarity(b) == 0.0

    def test_partial(self):
        a = StorageIndex.single_owner(1, DOMAIN, [1] * 10)
        b = StorageIndex.single_owner(2, DOMAIN, [1] * 6 + [2] * 4)
        assert a.similarity(b) == pytest.approx(0.6)

    def test_different_domains_zero(self):
        a = StorageIndex.uniform(1, DOMAIN, 1)
        b = StorageIndex.uniform(1, ValueDomain(0, 4), 1)
        assert a.similarity(b) == 0.0

    def test_store_local_sentinel(self):
        index = StorageIndex.uniform(1, DOMAIN, STORE_LOCAL)
        assert STORE_LOCAL in index.owners_for_range(0, 9)


class TestValueDomain:
    def test_size_and_contains(self):
        d = ValueDomain(5, 9)
        assert d.size == 5
        assert 5 in d and 9 in d and 4 not in d

    def test_clamp(self):
        d = ValueDomain(0, 10)
        assert d.clamp(-5) == 0
        assert d.clamp(50) == 10
        assert d.clamp(7) == 7

    def test_index_of(self):
        d = ValueDomain(10, 20)
        assert d.index_of(10) == 0
        assert d.index_of(20) == 10
        with pytest.raises(ValueError):
            d.index_of(9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ValueDomain(5, 4)

    def test_iteration(self):
        assert list(ValueDomain(1, 3)) == [1, 2, 3]
