"""Unit tests for the basestation: remapping, suppression, query planning."""


from repro.core.config import ScoopConfig, ValueDomain
from repro.core.histogram import Histogram
from repro.core.messages import ReplyMessage, SummaryMessage
from repro.core.query import Query
from repro.core.storage_index import STORE_LOCAL, StorageIndex
from repro.sim.packets import Frame, FrameKind
from repro.sim.topology import perfect
from tests.conftest import build_scoop_network

DOMAIN = ValueDomain(0, 100)


def booted_network(config=None, n=6):
    topo = perfect(n)
    config = config or ScoopConfig(n_nodes=n, domain=DOMAIN, beacon_interval=5.0)
    net, base, nodes = build_scoop_network(topo, config=config)
    net.boot_all(within=2.0)
    net.run(40.0)
    return net, base, nodes


def feed_summary(base, origin, values, now, sid=-1, neighbors=((0, 0.9),)):
    summary = SummaryMessage(
        origin=origin,
        histogram=Histogram.from_values(values, 10),
        min_value=min(values),
        max_value=max(values),
        sum_values=sum(values),
        readings_since_last=len(values),
        neighbors=tuple(neighbors),
        last_sid=sid,
    )
    base.stats.ingest_summary(summary, now)


class TestRemapping:
    def test_remap_disseminates_index(self):
        net, base, nodes = booted_network()
        for origin in (1, 2, 3):
            feed_summary(base, origin, [origin * 10] * 5, net.sim.now)
        base._remap()
        assert base.current_index is not None
        assert len(base.index_history) == 1
        net.run(net.sim.now + 30.0)
        # Trickle delivers the full index to every node.
        delivered = sum(
            1 for node in nodes if node.current_index is not None
        )
        assert delivered >= len(nodes) - 1

    def test_similar_index_suppressed(self):
        net, base, nodes = booted_network()
        for origin in (1, 2, 3):
            feed_summary(base, origin, [origin * 10] * 5, net.sim.now)
        base._remap()
        first_sid = base.current_index.sid
        base._remap()  # identical statistics -> near-identical index
        assert base.remaps_suppressed == 1
        assert base.current_index.sid == first_sid
        assert len(base.index_history) == 1

    def test_changed_statistics_new_index(self):
        net, base, nodes = booted_network()
        feed_summary(base, 1, [10] * 5, net.sim.now)
        base._remap()
        # Node 1 drastically changes what it produces; owners must move.
        feed_summary(base, 1, [90] * 5, net.sim.now + 100)
        feed_summary(base, 2, [10] * 5, net.sim.now + 100)
        base._remap()
        assert len(base.index_history) >= 1

    def test_store_local_fallback_disseminates_sentinel(self):
        config = ScoopConfig(n_nodes=6, domain=DOMAIN, allow_store_local_fallback=True)
        net, base, nodes = booted_network(config=config)
        for origin in (1, 2, 3, 4, 5):
            feed_summary(base, origin, [50] * 5, net.sim.now)
        # no queries recorded -> store-local is free, shipping is not
        base._remap()
        if base.last_build.chose_store_local:
            assert STORE_LOCAL in base.current_index.owners_for_range(0, 100)


class TestQueryPlanning:
    def test_node_list_query_targets_exactly(self):
        net, base, nodes = booted_network()
        q = Query(time_range=(0.0, 100.0), node_list=frozenset({2, 4}))
        assert base.plan_query(q) == {2, 4}

    def test_value_query_uses_index_owners(self):
        net, base, nodes = booted_network()
        index = StorageIndex.single_owner(
            1, DOMAIN, [2] * 50 + [3] * 51
        )
        base.current_index = index
        base.index_history.append((net.sim.now, index))
        q = Query(time_range=(net.sim.now, net.sim.now + 1), value_range=(10, 20))
        assert base.plan_query(q) == {2}
        q2 = Query(time_range=(net.sim.now, net.sim.now + 1), value_range=(40, 60))
        assert base.plan_query(q2) == {2, 3}

    def test_local_mode_nodes_added(self):
        net, base, nodes = booted_network()
        # No index history; node 1 reported sid -1 with values 10..20.
        feed_summary(base, 1, [15] * 5, net.sim.now, sid=-1)
        q = Query(time_range=(0.0, net.sim.now + 10), value_range=(10, 20))
        assert 1 in base.plan_query(q)

    def test_local_mode_respects_value_filter(self):
        net, base, nodes = booted_network()
        feed_summary(base, 1, [15] * 5, net.sim.now, sid=-1)
        q = Query(time_range=(0.0, net.sim.now + 10), value_range=(60, 70))
        assert 1 not in base.plan_query(q)

    def test_base_never_targets_itself(self):
        net, base, nodes = booted_network()
        index = StorageIndex.uniform(1, DOMAIN, 0)
        base.current_index = index
        base.index_history.append((net.sim.now, index))
        q = Query(time_range=(net.sim.now, net.sim.now + 1), value_range=(0, 100))
        assert base.plan_query(q) == set()

    def test_historical_indices_consulted(self):
        net, base, nodes = booted_network()
        old = StorageIndex.single_owner(1, DOMAIN, [2] * DOMAIN.size)
        new = StorageIndex.single_owner(2, DOMAIN, [3] * DOMAIN.size)
        base.index_history.append((10.0, old))
        base.index_history.append((500.0, new))
        base.current_index = new
        # Query about the old era targets the old owner.
        q = Query(time_range=(20.0, 100.0), value_range=(5, 6))
        assert 2 in base.plan_query(q)
        # Query spanning both eras targets both.
        q2 = Query(time_range=(20.0, 600.0), value_range=(5, 6))
        assert base.plan_query(q2) >= {2, 3}


class TestQueryExecution:
    def test_zero_target_query_answered_locally(self):
        net, base, nodes = booted_network()
        from repro.sim.flash import StoredReading

        base.flash.store(StoredReading(origin=4, value=33, timestamp=50.0))
        index = StorageIndex.uniform(1, DOMAIN, 0)
        base.current_index = index
        base.index_history.append((0.0, index))
        result = base.issue_query(
            Query(time_range=(0.0, 100.0), value_range=(30, 40))
        )
        assert result.answered_locally
        assert result.closed
        assert (33, 50.0, 4) in result.readings

    def test_reply_ingestion_updates_result(self):
        net, base, nodes = booted_network()
        index = StorageIndex.single_owner(1, DOMAIN, [2] * DOMAIN.size)
        base.current_index = index
        base.index_history.append((net.sim.now, index))
        result = base.issue_query(
            Query(time_range=(0.0, net.sim.now + 10), value_range=(5, 6))
        )
        qid = result.query.query_id
        reply = ReplyMessage(query_id=qid, origin=2, readings=[(5, 1.0, 2)])
        base._ingest_reply(
            Frame(src=2, dst=0, kind=FrameKind.REPLY, payload=reply, seqno=1)
        )
        assert 2 in result.nodes_replied
        assert (5, 1.0, 2) in result.readings

    def test_reply_after_window_ignored(self):
        net, base, nodes = booted_network()
        index = StorageIndex.single_owner(1, DOMAIN, [2] * DOMAIN.size)
        base.current_index = index
        base.index_history.append((net.sim.now, index))
        result = base.issue_query(
            Query(time_range=(0.0, net.sim.now + 10), value_range=(5, 6))
        )
        net.run(net.sim.now + base.config.query_reply_window + 1.0)
        assert result.closed
        # A straggler from a node that never replied in time is ignored.
        reply = ReplyMessage(
            query_id=result.query.query_id, origin=3, readings=[(5, 1.0, 3)]
        )
        base._accept_reply(reply, from_network=True)
        assert 3 not in result.nodes_replied
        assert (5, 1.0, 3) not in result.readings

    def test_node_list_filter_applied_to_local_scan(self):
        net, base, nodes = booted_network()
        from repro.sim.flash import StoredReading

        base.flash.store(StoredReading(origin=4, value=33, timestamp=50.0))
        base.flash.store(StoredReading(origin=5, value=34, timestamp=51.0))
        result = base.issue_query(
            Query(time_range=(0.0, 100.0), node_list=frozenset({4}))
        )
        values = [v for v, _t, _p in result.readings]
        assert 33 in values and 34 not in values


class TestSummaryAnswering:
    def test_max_min_answers(self):
        net, base, nodes = booted_network()
        feed_summary(base, 1, [10, 80], net.sim.now)
        feed_summary(base, 2, [5, 60], net.sim.now)
        assert base.answer_max() == 80
        assert base.answer_min() == 5

    def test_no_summaries_none(self):
        net, base, nodes = booted_network()
        assert base.answer_max() is None
