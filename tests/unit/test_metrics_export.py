"""Tests for the structured metrics pipeline: TrialMetrics, confidence
intervals, the per-campaign JSON export, the report CLI, and code-salted
cache keys."""

import dataclasses
import json
import math

import pytest

from repro.core.config import ScoopConfig, ValueDomain
from repro.experiments import __main__ as cli
from repro.experiments import salt
from repro.experiments.campaign import (
    CampaignResult,
    Trial,
    TrialResult,
    sample_stats,
    t_critical_95,
)
from repro.experiments.export import (
    EXPORT_SCHEMA_VERSION,
    campaign_to_dict,
    export_campaign,
    latest_export,
    list_exports,
    load_campaign_export,
)
from repro.experiments.reporting import figure_table_markdown, plus_minus
from repro.experiments.runner import ExperimentResult, ExperimentSpec, spec_key
from repro.sim.metrics import TrialMetrics


def small_spec(policy="scoop", seed=1):
    config = ScoopConfig(
        n_nodes=14,
        domain=ValueDomain(0, 20),
        sample_interval=5.0,
        query_interval=10.0,
        summary_interval=20.0,
        remap_interval=40.0,
        stabilization=60.0,
        duration=120.0,
        beacon_interval=5.0,
        query_reply_window=8.0,
    )
    return ExperimentSpec(policy=policy, workload="gaussian", scoop=config, seed=seed)


def sample_metrics(wall_clock=0.25):
    return TrialMetrics(
        messages_sent={"data": 10, "summary": 4, "beacon": 7},
        messages_received={"data": 12, "summary": 5},
        energy_j={
            "radio_tx": 0.5,
            "radio_rx": 0.7,
            "flash_write": 1e-4,
            "flash_read": 1e-5,
        },
        root_energy_j={
            "radio_tx": 0.01,
            "radio_rx": 0.05,
            "flash_write": 0.0,
            "flash_read": 0.0,
        },
        node_load={"0": 30, "1": 12},
        load_skew=1.8,
        planner={"model_builds": 3, "dijkstra_runs": 40},
        sim_time_s=193.0,
        wall_clock_s=wall_clock,
    )


def fake_result(spec, total=100.0, metrics=None, **kw):
    return ExperimentResult(
        spec=spec,
        breakdown={"data": total / 2, "summary": total / 2},
        total_messages=total,
        metrics=metrics,
        **kw,
    )


def fake_campaign_result(name="smoke", totals=(100.0, 140.0)):
    trials = []
    for seed, total in enumerate(totals, start=1):
        spec = small_spec(seed=seed)
        trials.append(
            TrialResult(
                Trial(spec, label="scoop/gaussian", scenario=name),
                fake_result(spec, total=total, metrics=sample_metrics()),
            )
        )
    return CampaignResult(name=name, trials=trials)


class TestTrialMetrics:
    def test_json_round_trip_is_identity(self):
        metrics = sample_metrics()
        clone = TrialMetrics.from_dict(json.loads(json.dumps(metrics.to_dict())))
        assert clone == metrics

    def test_from_dict_none_passthrough(self):
        assert TrialMetrics.from_dict(None) is None

    def test_result_round_trip_with_and_without_metrics(self):
        spec = small_spec()
        with_metrics = fake_result(spec, metrics=sample_metrics())
        clone = ExperimentResult.from_dict(
            json.loads(json.dumps(with_metrics.to_dict()))
        )
        assert clone == with_metrics
        assert isinstance(clone.metrics, TrialMetrics)
        without = fake_result(spec, analytical=True)
        clone = ExperimentResult.from_dict(json.loads(json.dumps(without.to_dict())))
        assert clone == without and clone.metrics is None

    def test_deterministic_dict_zeroes_wall_clock_only(self):
        spec = small_spec()
        a = fake_result(spec, metrics=sample_metrics(wall_clock=0.1))
        b = fake_result(spec, metrics=sample_metrics(wall_clock=9.9))
        assert a.to_dict() != b.to_dict()
        assert a.deterministic_dict() == b.deterministic_dict()
        # Results without metrics are unaffected.
        bare = fake_result(spec)
        assert bare.deterministic_dict() == bare.to_dict()


class TestConfidenceIntervals:
    def test_single_sample_has_no_spread(self):
        assert sample_stats([42.0]) == (42.0, 0.0, 0.0)

    def test_two_samples_match_hand_computation(self):
        mean, sd, ci = sample_stats([10.0, 14.0])
        assert mean == pytest.approx(12.0)
        assert sd == pytest.approx(math.sqrt(8.0))
        # df=1: t = 12.706; ci = t * sd / sqrt(2)
        assert ci == pytest.approx(12.706 * math.sqrt(8.0) / math.sqrt(2.0))

    def test_three_samples_use_df2(self):
        mean, sd, ci = sample_stats([1.0, 2.0, 3.0])
        assert (mean, sd) == (2.0, pytest.approx(1.0))
        assert ci == pytest.approx(4.303 / math.sqrt(3.0))

    def test_t_table_bounds(self):
        assert t_critical_95(0) == 0.0
        assert t_critical_95(1) == pytest.approx(12.706)
        # Between rows, df rounds DOWN (conservative: wider interval).
        assert t_critical_95(35) == pytest.approx(2.042)  # row for df=30
        assert t_critical_95(41) == pytest.approx(2.021)  # row for df=40
        assert t_critical_95(1000) == pytest.approx(1.980)  # row for df=120
        # Monotone non-increasing in df, and never below the normal 1.96.
        values = [t_critical_95(df) for df in range(1, 500)]
        assert values == sorted(values, reverse=True)
        assert min(values) >= 1.960

    def test_aggregates_carry_ci(self):
        result = fake_campaign_result(totals=(100.0, 140.0))
        (agg,) = result.aggregates()
        assert agg.mean_total == pytest.approx(120.0)
        assert agg.ci95_total > 0
        assert agg.ci95_breakdown["data"] > 0
        assert agg.stdev_breakdown["data"] == pytest.approx(
            agg.stdev_total / 2
        )


class TestCampaignExport:
    def test_document_shape(self):
        doc = campaign_to_dict(fake_campaign_result(), jobs=2, elapsed_s=1.5)
        assert doc["schema"] == EXPORT_SCHEMA_VERSION
        assert doc["kind"] == "repro-campaign"
        assert doc["name"] == "smoke"
        assert doc["seeds"] == [1, 2]
        assert doc["cache_salt"] == salt.cache_salt()
        assert doc["execution"]["trials"] == 2
        (label,) = doc["labels"]
        assert set(label["total"]) == {"mean", "stdev", "ci95"}
        assert set(label["breakdown"]["data"]) == {"mean", "stdev", "ci95"}
        for trial in doc["trials"]:
            assert trial["spec_key"] == spec_key(
                ExperimentSpec.from_dict(trial["result"]["spec"])
            )

    def test_export_write_load_round_trip(self, tmp_path):
        result = fake_campaign_result()
        path = export_campaign(result, out_dir=tmp_path)
        assert path.parent == tmp_path and path.suffix == ".json"
        doc = load_campaign_export(path)
        # Every trial's result deserializes back to the exact original,
        # metrics included: the export is lossless.
        for trial_doc, tr in zip(doc["trials"], result.trials):
            clone = ExperimentResult.from_dict(trial_doc["result"])
            assert clone == tr.result
            assert clone.metrics == tr.result.metrics

    def test_same_second_exports_do_not_overwrite(self, tmp_path):
        from datetime import datetime, timezone

        stamp = datetime(2026, 7, 30, 12, 0, 0, tzinfo=timezone.utc)
        result = fake_campaign_result()
        first = export_campaign(result, out_dir=tmp_path, generated_at=stamp)
        second = export_campaign(result, out_dir=tmp_path, generated_at=stamp)
        assert first != second and first.exists() and second.exists()
        assert latest_export("smoke", root=tmp_path) == second
        assert list_exports("smoke", root=tmp_path) == [first, second]
        # The order must survive identical mtimes (coarse-granularity or
        # copied filesystems): the .2 disambiguator compares numerically,
        # not lexicographically (".2.json" < ".json" would invert it).
        import os

        stat = first.stat()
        os.utime(first, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        os.utime(second, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert list_exports("smoke", root=tmp_path) == [first, second]
        assert latest_export("smoke", root=tmp_path) == second
        third = export_campaign(result, out_dir=tmp_path, generated_at=stamp)
        assert latest_export("smoke", root=tmp_path) == third

    def test_load_rejects_foreign_and_stale_documents(self, tmp_path):
        not_export = tmp_path / "x.json"
        not_export.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not a campaign export"):
            load_campaign_export(not_export)
        stale = tmp_path / "y.json"
        stale.write_text(
            json.dumps({"kind": "repro-campaign", "schema": EXPORT_SCHEMA_VERSION + 1})
        )
        with pytest.raises(ValueError, match="schema"):
            load_campaign_export(stale)

    def test_latest_export_empty_dir(self, tmp_path):
        assert latest_export(root=tmp_path / "missing") is None

    def test_figure_table_markdown(self):
        doc = campaign_to_dict(fake_campaign_result(totals=(100.0, 140.0)))
        text = figure_table_markdown(doc)
        assert "scoop/gaussian" in text
        assert "±" in text
        assert text.count("|") >= 10  # a real markdown table
        assert "`smoke`" in text

    def test_plus_minus_single_seed_is_bare_mean(self):
        assert plus_minus(120.0, 0.0) == "120"
        assert plus_minus(120.0, 7.4) == "120 ± 7"


class TestCacheSalt:
    def test_env_override_beats_tree_hash(self, monkeypatch):
        monkeypatch.setenv(salt.SALT_ENV, "pinned")
        assert salt.cache_salt() == "pinned"
        monkeypatch.setenv(salt.SALT_ENV, "")
        assert salt.cache_salt() == ""
        monkeypatch.delenv(salt.SALT_ENV)
        assert salt.cache_salt() == salt._tree_hash_cached()

    def test_source_change_changes_hash(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        before = salt.source_tree_hash(tmp_path)
        (tmp_path / "mod.py").write_text("x = 2\n")
        after = salt.source_tree_hash(tmp_path)
        assert before != after
        # Restoring the content restores the hash (content, not mtime).
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert salt.source_tree_hash(tmp_path) == before

    def test_new_file_changes_hash(self, tmp_path):
        (tmp_path / "a.py").write_text("pass\n")
        before = salt.source_tree_hash(tmp_path)
        (tmp_path / "b.py").write_text("pass\n")
        assert salt.source_tree_hash(tmp_path) != before

    def test_missing_tree_degrades(self, tmp_path):
        assert salt.source_tree_hash(tmp_path / "nope") == "no-source-tree"

    def test_spec_key_mixes_in_salt(self, monkeypatch):
        spec = small_spec()
        monkeypatch.setenv(salt.SALT_ENV, "one")
        first = spec_key(spec)
        assert spec_key(dataclasses.replace(spec, seed=2)) != first
        monkeypatch.setenv(salt.SALT_ENV, "two")
        assert spec_key(spec) != first
        monkeypatch.setenv(salt.SALT_ENV, "one")
        assert spec_key(spec) == first

    def test_package_tree_hash_is_stable_in_process(self):
        assert salt.cache_salt() == salt.cache_salt()
        assert len(salt._tree_hash_cached()) == 64


class TestCLIExportAndReport:
    def test_run_export_then_report(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out_dir = tmp_path / "exports"
        assert (
            cli.main(
                ["run", "smoke", "--jobs", "2", "--seeds", "2",
                 "--export", "--export-dir", str(out_dir)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "export:" in out
        exports = list_exports("smoke", root=out_dir)
        assert len(exports) == 1
        doc = load_campaign_export(exports[0])
        assert doc["execution"]["executed"] == 6
        assert doc["seeds"] == [1, 2]
        # Acceptance criteria: per-label CI stats + per-trial breakdowns.
        assert all("ci95" in label["total"] for label in doc["labels"])
        simulated = [t for t in doc["trials"] if not t["analytical"]]
        assert simulated
        for trial in simulated:
            metrics = trial["result"]["metrics"]
            assert metrics["messages_sent"]
            assert metrics["energy_j"]["radio_tx"] > 0

        # Replay from cache, export again: the new document records zero
        # executions — the CI cache-replay assertion reads this field.
        assert (
            cli.main(
                ["run", "smoke", "--jobs", "2", "--seeds", "2",
                 "--export", "--export-dir", str(out_dir)]
            )
            == 0
        )
        capsys.readouterr()
        replay_doc = load_campaign_export(latest_export("smoke", root=out_dir))
        assert replay_doc["execution"]["executed"] == 0
        assert replay_doc["execution"]["cached"] == 6

        # The report subcommand renders the latest export.
        assert cli.main(["report", "smoke", "--export-dir", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "scoop/gaussian" in out and "±" in out

    def test_report_accepts_explicit_path(self, tmp_path, capsys):
        path = export_campaign(fake_campaign_result(), out_dir=tmp_path)
        assert cli.main(["report", str(path)]) == 0
        assert "scoop/gaussian" in capsys.readouterr().out

    def test_report_without_exports_fails_cleanly(self, tmp_path, capsys):
        assert cli.main(["report", "--export-dir", str(tmp_path)]) == 2
        assert "no export" in capsys.readouterr().err