"""Unit tests for basestation statistics and the network cost model."""

import math

import pytest

from repro.core.config import ScoopConfig, ValueDomain
from repro.core.cost_model import MIN_QUALITY, NetworkModel, hop_cost
from repro.core.histogram import Histogram
from repro.core.messages import SummaryMessage
from repro.core.statistics import BasestationStatistics, QueryStatistics

DOMAIN = ValueDomain(0, 19)


def make_stats(**kw):
    kw.setdefault("n_nodes", 5)
    kw.setdefault("domain", DOMAIN)
    return BasestationStatistics(ScoopConfig(**kw))


def summary(origin, values=(5, 6, 7), neighbors=(), sid=-1, readings=7):
    return SummaryMessage(
        origin=origin,
        histogram=Histogram.from_values(list(values), 10),
        min_value=min(values),
        max_value=max(values),
        sum_values=sum(values),
        readings_since_last=readings,
        neighbors=tuple(neighbors),
        last_sid=sid,
    )


class TestQueryStatistics:
    def test_rate_from_history(self):
        qs = QueryStatistics(DOMAIN)
        for k in range(10):
            qs.record((1, 3), now=float(k * 10))
        assert qs.query_rate(now=100.0) == pytest.approx(0.1)

    def test_empty_rate_zero(self):
        qs = QueryStatistics(DOMAIN)
        assert qs.query_rate(50.0) == 0.0

    def test_probability_vector(self):
        qs = QueryStatistics(DOMAIN)
        qs.record((0, 9), now=0.0)
        qs.record((5, 9), now=1.0)
        vec = qs.probability_vector()
        assert vec[0] == pytest.approx(0.5)   # covered by 1 of 2 queries
        assert vec[7] == pytest.approx(1.0)   # covered by both
        assert vec[15] == 0.0

    def test_range_clipped_to_domain(self):
        qs = QueryStatistics(DOMAIN)
        qs.record((-10, 100), now=0.0)
        assert qs.probability_vector().max() == pytest.approx(1.0)

    def test_node_list_query_counts_rate_only(self):
        qs = QueryStatistics(DOMAIN)
        qs.record(None, now=0.0)
        assert qs.total_queries == 1
        assert qs.probability_vector().sum() == 0.0


class TestIngestion:
    def test_last_histogram_kept(self):
        stats = make_stats()
        stats.ingest_summary(summary(1, values=(1, 2)), now=10.0)
        stats.ingest_summary(summary(1, values=(8, 9)), now=120.0)
        assert stats.records[1].last_summary.min_value == 8
        assert len(stats.summary_history) == 2  # never discarded

    def test_data_rate_estimated(self):
        stats = make_stats()
        stats.ingest_summary(summary(1, readings=10), now=0.0)
        stats.ingest_summary(summary(1, readings=10), now=100.0)
        assert stats.records[1].data_rate == pytest.approx(0.1, rel=0.5)

    def test_link_quality_direction(self):
        stats = make_stats()
        # Node 2's summary says it hears node 3 at 0.8: edge 3 -> 2.
        stats.ingest_summary(summary(2, neighbors=((3, 0.8),)), now=5.0)
        assert stats.link_quality[(3, 2)] == pytest.approx(0.8)

    def test_parent_observation(self):
        stats = make_stats()
        stats.observe_packet_header(4, 2, now=1.0)
        assert stats.parents[4][0] == 2

    def test_self_parent_ignored(self):
        stats = make_stats()
        stats.observe_packet_header(4, 4, now=1.0)
        assert 4 not in stats.parents

    def test_known_nodes_union(self):
        stats = make_stats()
        stats.ingest_summary(summary(1, neighbors=((3, 0.5),)), now=0.0)
        stats.observe_packet_header(4, 2, now=0.0)
        assert set(stats.known_nodes()) >= {0, 1, 2, 3, 4}

    def test_production_matrix_rows(self):
        stats = make_stats()
        stats.ingest_summary(summary(1, values=(2, 3)), now=0.0)
        stats.ingest_summary(summary(2, values=(15, 16)), now=0.0)
        producers = stats.producer_nodes()
        matrix = stats.production_matrix(producers)
        assert matrix.shape == (2, DOMAIN.size)
        assert matrix[0][2] > 0 and matrix[0][15] == 0.0


class TestSidTracking:
    def test_sids_in_use_window(self):
        stats = make_stats()
        stats.ingest_summary(summary(1, sid=1), now=100.0)
        stats.ingest_summary(summary(1, sid=2), now=300.0)
        stats.ingest_summary(summary(1, sid=3), now=500.0)
        in_use = stats.sids_in_use(250.0, 350.0)
        assert 1 in in_use  # last reported before the window
        assert 2 in in_use  # reported inside it
        assert 3 not in in_use or True  # may appear via summary-lag slack

    def test_no_summaries_means_local(self):
        stats = make_stats()
        assert -1 in stats.sids_in_use(0.0, 100.0)

    def test_local_nodes_filtered_by_value_range(self):
        stats = make_stats()
        stats.ingest_summary(summary(1, values=(2, 3), sid=-1), now=10.0)
        stats.ingest_summary(summary(2, values=(15, 16), sid=-1), now=10.0)
        nodes = stats.nodes_possibly_storing_locally((14, 17), 0.0, 50.0)
        assert nodes == {2}

    def test_indexed_nodes_not_local(self):
        stats = make_stats()
        stats.ingest_summary(summary(1, sid=2), now=10.0)
        stats.ingest_summary(summary(1, sid=2), now=120.0)
        assert 1 not in stats.nodes_possibly_storing_locally(None, 100.0, 200.0)


class TestSummaryAnswers:
    def test_max_from_summaries(self):
        stats = make_stats()
        stats.ingest_summary(summary(1, values=(3, 9)), now=10.0)
        stats.ingest_summary(summary(2, values=(5, 17)), now=20.0)
        assert stats.max_value_seen() == 17
        assert stats.min_value_seen() == 3

    def test_since_filter(self):
        stats = make_stats()
        stats.ingest_summary(summary(1, values=(18, 19)), now=10.0)
        stats.ingest_summary(summary(2, values=(4, 5)), now=50.0)
        assert stats.max_value_seen(since=30.0) == 5
        assert stats.max_value_seen(since=100.0) is None


class TestNetworkModel:
    def test_hop_cost_inverse_square(self):
        assert hop_cost(1.0) == pytest.approx(1.0)
        assert hop_cost(0.5) == pytest.approx(4.0)

    def test_hop_cost_floor(self):
        assert hop_cost(0.0) == hop_cost(MIN_QUALITY)

    def test_xmits_shortest_path(self):
        model = NetworkModel.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 0.5)])
        # direct edge costs 4, two-hop path costs 2
        assert model.xmits(0, 2) == pytest.approx(2.0)

    def test_unknown_pair_inf(self):
        model = NetworkModel.from_edges([(0, 1, 1.0)])
        assert math.isinf(model.xmits(1, 5))
        assert not model.reachable(1, 5)

    def test_self_distance_zero(self):
        model = NetworkModel.from_edges([(0, 1, 1.0)])
        assert model.xmits(0, 0) == 0.0

    def test_roundtrip_both_directions(self):
        model = NetworkModel.from_edges([(0, 1, 1.0), (1, 0, 0.5)])
        assert model.roundtrip(0, 1) == pytest.approx(1.0 + 4.0)

    def test_from_statistics_reverse_edges_assumed(self):
        stats = make_stats()
        stats.ingest_summary(summary(2, neighbors=((1, 0.9),)), now=0.0)
        model = NetworkModel.from_statistics(stats)
        assert math.isfinite(model.xmits(1, 2))
        assert math.isfinite(model.xmits(2, 1))  # weaker assumed reverse

    def test_tree_edges_fill_gaps(self):
        stats = make_stats()
        stats.observe_packet_header(3, 0, now=0.0)
        model = NetworkModel.from_statistics(stats)
        assert math.isfinite(model.xmits(0, 3))

    def test_xmits_matrix_matches_scalar(self):
        model = NetworkModel.from_edges(
            [(0, 1, 0.9), (1, 2, 0.8), (2, 0, 0.7), (1, 0, 0.9), (2, 1, 0.8)]
        )
        matrix = model.xmits_matrix([0, 1], [1, 2])
        assert matrix[0][0] == pytest.approx(model.xmits(0, 1))
        assert matrix[1][1] == pytest.approx(model.xmits(1, 2))
