"""Unit tests for the chart renderer, the ``plot``/``list`` CLI, and the
scenario registry's descriptions."""

import json
import re
import xml.etree.ElementTree as ET

import pytest

from repro.experiments import __main__ as cli
from repro.experiments.campaign import Campaign
from repro.experiments.export import EXPORT_KIND, EXPORT_SCHEMA_VERSION
from repro.experiments.plotting import (
    breakdown_svg,
    completeness_labels,
    completeness_series_svg,
    parse_series,
    plot_campaign,
    png_supported,
    policy_color,
    series_svg,
    svg_to_data_uri,
)
from repro.experiments.scenarios import SCENARIOS, scenario_description


def label_entry(label, mean, ci=0.0, breakdown=None):
    breakdown = breakdown or {"data": mean / 2, "query/reply": mean / 2}
    return {
        "label": label,
        "n": 2,
        "seeds": [1, 2],
        "total": {"mean": mean, "stdev": ci / 2, "ci95": ci},
        "breakdown": {
            cat: {"mean": value, "stdev": 0.0, "ci95": 0.0}
            for cat, value in breakdown.items()
        },
    }


def make_doc(labels, name="smoke"):
    return {
        "schema": EXPORT_SCHEMA_VERSION,
        "kind": EXPORT_KIND,
        "name": name,
        "generated_at": "2026-07-30T00:00:00Z",
        "seeds": [1, 2],
        "execution": {"trials": len(labels), "executed": 0, "cached": len(labels)},
        "labels": labels,
        "trials": [],
    }


BAR_DOC = make_doc(
    [
        label_entry("scoop/real", 1200.0, ci=80.0),
        label_entry("local/real", 4100.0),
        label_entry("base/real", 6300.0, ci=9000.0),  # CI dwarfing the mean
    ]
)

SWEEP_DOC = make_doc(
    [
        label_entry(f"n={n}/{policy}", total, ci=30.0)
        for n, mean in ((64, 1000.0), (128, 2000.0), (256, 3500.0))
        for policy, total in (("scoop", mean), ("local", mean * 3))
    ],
    name="scaling_xl",
)

CATEGORICAL_DOC = make_doc(
    [
        label_entry(f"topo={kind}/scoop", 1000.0 + 10 * i)
        for i, kind in enumerate(("line", "grid", "testbed"))
    ],
    name="topology_profiles",
)


def churn_trial(label, seed, completeness):
    return {
        "label": label,
        "scenario": "node_churn",
        "seed": seed,
        "analytical": False,
        "from_cache": False,
        "result": {"metrics": {"survival": {"completeness": completeness}}},
    }


#: An E14-shaped export: sweep labels plus per-trial survival metrics.
CHURN_DOC = dict(
    make_doc(
        [
            label_entry(f"churn={rate:g}/{policy}", 1000.0)
            for rate in (0.0, 0.3)
            for policy in ("scoop", "local")
        ],
        name="node_churn",
    ),
    trials=[
        churn_trial(f"churn={rate:g}/{policy}", seed, completeness - seed * 0.01)
        for rate, completeness in ((0.0, 0.95), (0.3, 0.75))
        for policy in ("scoop", "local")
        for seed in (1, 2)
    ],
)


def svg_root(text):
    return ET.fromstring(text)  # raises on malformed XML


class TestBreakdownChart:
    def test_renders_well_formed_svg(self):
        svg = breakdown_svg(BAR_DOC)
        root = svg_root(svg)
        assert root.tag.endswith("svg")
        assert "scoop/real" in svg and "local/real" in svg

    def test_marks_stay_inside_viewbox(self):
        svg = breakdown_svg(BAR_DOC)
        root = svg_root(svg)
        width = float(root.get("width"))
        height = float(root.get("height"))
        for el in root.iter():
            for attr in ("x", "x1", "x2", "cx"):
                if el.get(attr):
                    assert -1 <= float(el.get(attr)) <= width + 1, el.attrib
            for attr in ("y", "y1", "y2", "cy"):
                if el.get(attr):
                    assert -1 <= float(el.get(attr)) <= height + 1, el.attrib

    def test_empty_export_rejected(self):
        with pytest.raises(ValueError):
            breakdown_svg(make_doc([]))


class TestSeriesParsing:
    def test_numeric_sweep(self):
        param, series, x_names = parse_series(SWEEP_DOC)
        assert param == "n"
        assert set(series) == {"scoop", "local"}
        assert [x for x, _m, _c in series["scoop"]] == [64.0, 128.0, 256.0]
        assert x_names == {}

    def test_categorical_sweep_indexes_by_first_appearance(self):
        param, series, x_names = parse_series(CATEGORICAL_DOC)
        assert param == "topo"
        assert [x for x, _m, _c in series["scoop"]] == [0.0, 1.0, 2.0]
        assert x_names == {0.0: "line", 1.0: "grid", 2.0: "testbed"}

    def test_non_sweep_is_none(self):
        assert parse_series(BAR_DOC) is None

    def test_mixed_params_are_not_a_sweep(self):
        doc = make_doc(
            [label_entry("n=64/scoop", 10.0), label_entry("qi=5/scoop", 20.0)]
        )
        assert parse_series(doc) is None


class TestSeriesChart:
    def test_one_line_per_policy_with_whiskers(self):
        svg = series_svg(SWEEP_DOC)
        svg_root(svg)
        assert svg.count("<polyline") == 2
        # every point carries a marker
        assert svg.count("<circle") == 6
        assert "total messages vs n" in svg

    def test_policy_colors_are_entity_stable(self):
        assert policy_color("scoop") != policy_color("local")
        svg = series_svg(SWEEP_DOC)
        assert policy_color("scoop") in svg and policy_color("local") in svg

    def test_categorical_axis_names_values(self):
        svg = series_svg(CATEGORICAL_DOC)
        for kind in ("line", "grid", "testbed"):
            assert kind in svg

    def test_same_policy_series_get_distinct_colors(self):
        # E8-style labels: two scoop series differing only by workload
        # must not render as identically colored lines.
        doc = make_doc(
            [
                label_entry(f"n={n}/scoop/{workload}", mean)
                for n, mean in ((25, 900.0), (63, 1800.0))
                for workload, mean in (("real", mean), ("random", mean * 2))
            ],
            name="scaling",
        )
        svg = series_svg(doc)
        strokes = {
            m for m in re.findall(r'polyline[^>]*stroke="(#[0-9a-f]{6})"', svg)
        }
        assert len(strokes) == 2

    def test_non_sweep_rejected(self):
        with pytest.raises(ValueError):
            series_svg(BAR_DOC)


class TestCompletenessChart:
    def test_labels_aggregate_across_seeds(self):
        labels = completeness_labels(CHURN_DOC)
        assert labels is not None
        by_label = {entry["label"]: entry["total"] for entry in labels}
        # Mean of the two seeds (0.95 - 0.01, 0.95 - 0.02) = 0.935.
        assert by_label["churn=0/scoop"]["mean"] == pytest.approx(0.935)
        assert by_label["churn=0.3/local"]["mean"] == pytest.approx(0.735)
        assert by_label["churn=0/scoop"]["ci95"] > 0

    def test_no_survival_data_is_none(self):
        assert completeness_labels(SWEEP_DOC) is None
        with pytest.raises(ValueError, match="survival"):
            completeness_series_svg(SWEEP_DOC)

    def test_renders_series_chart_with_metric_title(self):
        svg = completeness_series_svg(CHURN_DOC)
        svg_root(svg)
        assert "retrieval completeness" in svg
        assert "churn" in svg


class TestPlotCampaign:
    def test_bar_doc_writes_breakdown_only(self, tmp_path):
        written = plot_campaign(BAR_DOC, tmp_path)
        assert [p.name for p in written] == ["smoke-breakdown.svg"]
        assert written[0].stat().st_size > 0
        svg_root(written[0].read_text())

    def test_sweep_doc_writes_both_charts(self, tmp_path):
        written = plot_campaign(SWEEP_DOC, tmp_path, stem="scaling_xl-20260730")
        assert [p.name for p in written] == [
            "scaling_xl-20260730-breakdown.svg",
            "scaling_xl-20260730-series.svg",
        ]
        for path in written:
            svg_root(path.read_text())

    def test_churn_doc_writes_completeness_chart_too(self, tmp_path):
        written = plot_campaign(CHURN_DOC, tmp_path, stem="node_churn-x")
        assert [p.name for p in written] == [
            "node_churn-x-breakdown.svg",
            "node_churn-x-series.svg",
            "node_churn-x-completeness.svg",
        ]
        for path in written:
            svg_root(path.read_text())

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            plot_campaign(BAR_DOC, tmp_path, formats=("svg", "bmp"))
        with pytest.raises(ValueError, match="no plot formats"):
            plot_campaign(BAR_DOC, tmp_path, formats=())

    def test_png_gated_on_optional_dependency(self, tmp_path):
        if png_supported():  # pragma: no cover - env-dependent branch
            written = plot_campaign(BAR_DOC, tmp_path, formats=("png",))
            assert written and written[0].suffix == ".png"
        else:
            with pytest.raises(RuntimeError, match="cairosvg"):
                plot_campaign(BAR_DOC, tmp_path, formats=("png",))

    def test_data_uri_round_trip(self):
        uri = svg_to_data_uri("<svg/>")
        assert uri.startswith("data:image/svg+xml;base64,")


def write_export(tmp_path, doc):
    path = tmp_path / f"{doc['name']}-2026-07-30T000000Z.json"
    path.write_text(json.dumps(doc))
    return path


class TestPlotCLI:
    def test_plot_latest_export(self, tmp_path, capsys):
        write_export(tmp_path, SWEEP_DOC)
        code = cli.main(["plot", "--export-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert str(tmp_path / "plots") in out
        images = sorted(p.name for p in (tmp_path / "plots").iterdir())
        assert images == [
            "scaling_xl-2026-07-30T000000Z-breakdown.svg",
            "scaling_xl-2026-07-30T000000Z-series.svg",
        ]

    def test_plot_explicit_file_and_out_dir(self, tmp_path, capsys):
        path = write_export(tmp_path, BAR_DOC)
        out_dir = tmp_path / "images"
        code = cli.main(["plot", str(path), "--out-dir", str(out_dir)])
        assert code == 0
        assert (out_dir / f"{path.stem}-breakdown.svg").is_file()

    def test_plot_without_exports_names_directory(self, tmp_path, capsys):
        code = cli.main(["plot", "smoke", "--export-dir", str(tmp_path)])
        assert code == 2
        err = capsys.readouterr().err
        assert str(tmp_path) in err and "--export" in err

    def test_plot_rejects_bad_format(self, tmp_path, capsys):
        write_export(tmp_path, BAR_DOC)
        code = cli.main(["plot", "--export-dir", str(tmp_path), "--format", "bmp"])
        assert code == 2
        assert "bmp" in capsys.readouterr().err

    def test_plot_rejects_empty_format(self, tmp_path, capsys):
        write_export(tmp_path, BAR_DOC)
        code = cli.main(["plot", "--export-dir", str(tmp_path), "--format", ","])
        assert code == 2
        assert "format" in capsys.readouterr().err


class TestReportAndRunErrors:
    def test_report_without_exports_names_directory(self, tmp_path, capsys):
        code = cli.main(["report", "smoke", "--export-dir", str(tmp_path)])
        assert code == 2
        err = capsys.readouterr().err
        assert str(tmp_path) in err

    def test_report_missing_file_is_a_clear_error(self, tmp_path, capsys):
        code = cli.main(["report", str(tmp_path / "nope.json")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_unknown_scenario_suggests_list(self, tmp_path, capsys):
        code = cli.main(["run", "figure99", "--no-cache"])
        assert code == 2
        assert "list" in capsys.readouterr().err
        code = cli.main(["report", "figure99", "--export-dir", str(tmp_path)])
        assert code == 2
        assert "list" in capsys.readouterr().err


class TestScenarioRegistry:
    def test_list_prints_descriptions(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for name, scenario in SCENARIOS.items():
            assert name in out
            assert scenario.description in out

    def test_every_scenario_has_description_and_new_aliases(self):
        for name in ("topology_profiles", "loss_sweep", "scaling_xl"):
            assert scenario_description(name)
        assert scenario_description("E13") == scenario_description("scaling_xl")

    def test_campaign_from_alias_canonicalizes_its_name(self):
        # A campaign run as "E13" exports as "scaling_xl-<stamp>.json",
        # which is the glob `report E13`/`plot scaling_xl` both search.
        campaign = Campaign.from_scenario("E13", seeds=(1,), scale=0.05)
        assert campaign.name == "scaling_xl"
        assert all(t.scenario == "scaling_xl" for t in campaign.trials)
