"""Unit tests for the experiment runner, scenarios, reporting and the
remaining substrate plumbing (mote dispatch, network assembly, trace
loader)."""

import dataclasses

import pytest

from repro.core.config import ScoopConfig, ValueDomain
from repro.experiments.reporting import (
    CATEGORIES,
    breakdown_row,
    breakdown_table,
    format_table,
    rates_table,
    series_table,
)
from repro.experiments.runner import (
    POLICIES,
    ExperimentResult,
    ExperimentSpec,
    build_topology,
    scale_spec,
)
from repro.experiments import scenarios
from repro.sim.mote import Mote
from repro.sim.network import Network
from repro.sim.packets import Frame, FrameKind
from repro.sim.topology import perfect
from repro.workloads.real_trace import IntelLabTraceWorkload


class TestExperimentSpec:
    def test_defaults_are_paper_defaults(self):
        spec = ExperimentSpec()
        assert spec.policy == "scoop"
        assert spec.scoop.sample_interval == 15.0
        assert spec.scoop.n_nodes == 63
        assert spec.scoop.duration == 2400.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(policy="teleport")

    def test_scale_spec_shrinks_durations_only(self):
        spec = ExperimentSpec()
        scaled = scale_spec(spec, 0.25)
        assert scaled.scoop.duration == pytest.approx(600.0)
        assert scaled.scoop.sample_interval == 15.0  # rates untouched
        assert scaled.scoop.query_interval == 15.0

    def test_scale_spec_has_floors(self):
        scaled = scale_spec(ExperimentSpec(), 0.01)
        assert scaled.scoop.duration >= 300.0
        assert scaled.scoop.stabilization >= 240.0

    def test_scale_one_is_identity(self):
        spec = ExperimentSpec()
        assert scale_spec(spec, 1.0) is spec

    def test_build_topology_kinds(self):
        spec = ExperimentSpec(scoop=ScoopConfig(n_nodes=20, domain=ValueDomain(0, 100)))
        for kind in ("testbed", "geometric", "line", "grid"):
            topo = build_topology(dataclasses.replace(spec, topology_kind=kind))
            assert topo.n == 20
        # Unknown kinds are rejected at spec construction, before any
        # topology is built.
        with pytest.raises(ValueError):
            dataclasses.replace(spec, topology_kind="torus")

    def test_link_loss_degrades_topology(self):
        spec = ExperimentSpec(scoop=ScoopConfig(n_nodes=20, domain=ValueDomain(0, 100)))
        lossy = dataclasses.replace(spec, link_loss=0.4)
        base_topo, lossy_topo = build_topology(spec), build_topology(lossy)
        pairs = [
            (i, j)
            for i in range(20)
            for j in range(20)
            if i != j and base_topo.audible(i, j)
        ]
        assert pairs
        for i, j in pairs:
            assert lossy_topo.audible(i, j)
            assert lossy_topo.loss[i][j] == pytest.approx(
                1.0 - (1.0 - base_topo.loss[i][j]) * 0.6
            )
        with pytest.raises(ValueError):
            dataclasses.replace(spec, link_loss=1.0)


class TestScenarios:
    def test_fig3_left_series(self):
        specs = scenarios.fig3_left()
        labels = [(s.policy, s.workload) for s in specs]
        assert labels == [
            ("scoop", "unique"),
            ("scoop", "gaussian"),
            ("local", "gaussian"),
            ("base", "gaussian"),
        ]

    def test_fig3_middle_policies(self):
        assert [s.policy for s in scenarios.fig3_middle()] == [
            "scoop", "local", "hash", "base",
        ]

    def test_fig3_right_domains(self):
        specs = {s.workload: s for s in scenarios.fig3_right()}
        assert specs["real"].scoop.domain.size == 150
        assert specs["random"].scoop.domain.size == 101

    def test_fig4_uses_node_queries(self):
        for frac, trio in scenarios.fig4_selectivity(fractions=(0.5,)):
            for spec in trio:
                assert spec.query_plan.kind == "nodes"
                assert spec.query_plan.node_frac == frac

    def test_fig5_sets_interval(self):
        for interval, trio in scenarios.fig5_query_interval(intervals=(30.0,)):
            for spec in trio:
                assert spec.scoop.query_interval == 30.0

    def test_scaling_sets_sizes(self):
        for n, specs in scenarios.scaling(sizes=(25,)):
            for spec in specs:
                assert spec.scoop.n_nodes == 25

    def test_all_scenarios_produce_valid_policies(self):
        for spec in scenarios.fig3_middle() + scenarios.fig3_left():
            assert spec.policy in POLICIES


class TestReporting:
    def _result(self, policy="scoop", workload="real", total=100):
        return ExperimentResult(
            spec=ExperimentSpec(policy=policy, workload=workload),
            breakdown={c: 10 for c in CATEGORIES},
            total_messages=total,
        )

    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_breakdown_row_order(self):
        row = breakdown_row(self._result())
        assert row[0] == "scoop/real"
        assert row[-1] == 100

    def test_breakdown_table_contains_all_rows(self):
        text = breakdown_table([self._result(), self._result("local")], "X")
        assert "scoop/real" in text and "local/real" in text

    def test_series_table(self):
        text = series_table("x", {"scoop": [1, 2], "base": [3, 4]}, ["a", "b"], "T")
        assert "scoop (messages)" in text and "base (messages)" in text

    def test_rates_table_mentions_paper_targets(self):
        text = rates_table(self._result(), "rates")
        assert "~93%" in text and "~85%" in text and "~78%" in text


class TestMoteDispatch:
    def _network(self, n=3):
        net = Network(perfect(n), seed=1)
        motes = [Mote(i, net.sim, net.radio, is_root=(i == 0)) for i in range(n)]
        for mote in motes:
            net.add_mote(mote)
        return net, motes

    def test_unbooted_mote_ignores_frames(self):
        net, motes = self._network()
        motes[1].on_receive(
            Frame(src=0, dst=1, kind=FrameKind.DATA, payload=None, seqno=1)
        )
        assert not motes[1].linkest.knows(0)

    def test_duplicate_frames_dropped_once(self):
        net, motes = self._network()
        seen = []
        motes[1].handle_frame = seen.append
        motes[1].booted = True
        frame = Frame(src=0, dst=1, kind=FrameKind.DATA, payload=None, seqno=1)
        motes[1].on_receive(frame)
        motes[1].on_receive(frame)  # retransmission: same frame_id
        assert len(seen) == 1

    def test_seqnos_monotonic(self):
        net, motes = self._network()
        values = [motes[0].next_seqno() for _ in range(5)]
        assert values == sorted(values) and len(set(values)) == 5

    def test_duplicate_mote_id_rejected(self):
        net, motes = self._network()
        with pytest.raises(ValueError):
            net.add_mote(Mote(99, net.sim, net.radio))  # outside topology

    def test_beacons_feed_neighbor_parents(self):
        net, motes = self._network()
        net.boot_all(within=1.0)
        net.run(30.0)
        assert motes[0].tree.neighbor_parents  # root heard its neighbors
        assert net.tree_converged()

    def test_ttl_exhausted_frames_not_forwarded(self):
        net, motes = self._network()
        motes[1].booted = True
        outcome = []
        frame = Frame(
            src=0, dst=1, kind=FrameKind.SUMMARY, payload=None, seqno=1, ttl=0
        )
        motes[1].forward(frame, dst=2, done=outcome.append)
        assert outcome == [False]


class TestIntelLabLoader:
    def test_loads_and_rescales(self, tmp_path):
        trace = tmp_path / "data.txt"
        rows = []
        for epoch in range(20):
            for mote in (1, 2):
                light = 100.0 * mote + epoch
                rows.append(
                    f"2004-03-01 00:{epoch:02d}:00 {epoch} {mote} "
                    f"20.0 40.0 {light} 2.6"
                )
        trace.write_text("\n".join(rows))
        domain = ValueDomain(0, 149)
        wl = IntelLabTraceWorkload(trace, domain, n_nodes=4)
        first = wl.sample(0, 0.0)
        second = wl.sample(0, 15.0)
        assert first in domain and second in domain
        assert second != first or True  # consecutive trace rows
        # node 1 replays mote 2's (brighter) series: higher values
        assert wl.sample(1, 0.0) > wl.sample(2, 0.0) or wl.sample(1, 0.0) >= 0

    def test_malformed_rows_skipped(self, tmp_path):
        trace = tmp_path / "data.txt"
        trace.write_text(
            "garbage line\n"
            "2004-03-01 00:00:00 1 1 20.0 40.0 500.0 2.6\n"
            "short row\n"
        )
        wl = IntelLabTraceWorkload(trace, ValueDomain(0, 100), n_nodes=2)
        assert wl.sample(0, 0.0) in ValueDomain(0, 100)

    def test_empty_file_rejected(self, tmp_path):
        trace = tmp_path / "data.txt"
        trace.write_text("no usable rows here\n")
        with pytest.raises(ValueError):
            IntelLabTraceWorkload(trace, ValueDomain(0, 100), n_nodes=2)
