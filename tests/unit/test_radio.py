"""Unit tests for the radio medium: loss, ACKs, CSMA, collisions, snooping."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.packets import BROADCAST, Frame, FrameKind
from repro.sim.radio import Radio, RadioConfig
from repro.sim.topology import from_loss_matrix, line, perfect


class Listener:
    """Minimal RadioListener recording everything it hears."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []
        self.snooped = []

    def on_receive(self, frame):
        self.received.append(frame)

    def on_snoop(self, frame):
        self.snooped.append(frame)


def build(topology, seed=0, config=None):
    sim = Simulator(seed=seed)
    radio = Radio(sim, topology, config=config)
    listeners = [Listener(i) for i in range(topology.n)]
    for listener in listeners:
        radio.register(listener)
    return sim, radio, listeners


def data_frame(src, dst, payload_bytes=10):
    class Payload:
        def wire_bytes(self):
            return payload_bytes

    return Frame(src=src, dst=dst, kind=FrameKind.DATA, payload=Payload())


class TestDelivery:
    def test_broadcast_reaches_all_on_perfect_channel(self):
        sim, radio, listeners = build(perfect(4))
        radio.broadcast(data_frame(0, BROADCAST))
        sim.run(1.0)
        for listener in listeners[1:]:
            assert len(listener.received) == 1

    def test_unicast_delivered_and_acked(self):
        sim, radio, listeners = build(perfect(3))
        outcome = []
        radio.unicast(data_frame(0, 1), done=outcome.append)
        sim.run(1.0)
        assert outcome == [True]
        assert len(listeners[1].received) == 1

    def test_unicast_to_unreachable_fails(self):
        topo = from_loss_matrix([[1.0, 1.0], [1.0, 1.0]])  # no links
        sim, radio, listeners = build(topo)
        outcome = []
        radio.unicast(data_frame(0, 1), done=outcome.append)
        sim.run(5.0)
        assert outcome == [False]
        assert listeners[1].received == []

    def test_total_loss_link_never_delivers(self):
        topo = from_loss_matrix([[1.0, 0.98], [0.98, 1.0]])
        sim, radio, listeners = build(topo, seed=1)
        successes = 0
        for _ in range(20):
            radio.broadcast(data_frame(0, BROADCAST))
            sim.run(sim.now + 1.0)
        assert len(listeners[1].received) < 10  # ~2% delivery

    def test_snoop_on_unicast_not_addressed_to_us(self):
        sim, radio, listeners = build(perfect(3))
        radio.unicast(data_frame(0, 1))
        sim.run(1.0)
        assert len(listeners[2].snooped) >= 1
        assert listeners[2].received == []

    def test_retransmission_until_ack(self):
        # Forward link good, reverse (ACK) link lossy: sender retries.
        topo = from_loss_matrix([[1.0, 0.0], [0.7, 1.0]])
        sim, radio, listeners = build(topo, seed=3)
        outcome = []
        radio.unicast(data_frame(0, 1), done=outcome.append)
        sim.run(5.0)
        assert radio.stats.frames_sent >= 1
        # dst certainly received (forward lossless)
        assert len(listeners[1].received) >= 1

    def test_max_retries_bounds_attempts(self):
        config = RadioConfig(max_retries=2)
        topo = from_loss_matrix([[1.0, 0.97], [0.97, 1.0]])
        sim, radio, listeners = build(topo, seed=5, config=config)
        outcome = []
        radio.unicast(data_frame(0, 1), done=outcome.append)
        sim.run(10.0)
        data_sends = radio.stats.frames_sent - radio.stats.acks_sent
        assert data_sends <= 3  # 1 try + 2 retries


class TestQueueing:
    def test_sender_serialises_own_frames(self):
        sim, radio, listeners = build(perfect(2))
        for _ in range(5):
            radio.unicast(data_frame(0, 1))
        sim.run(5.0)
        assert len(listeners[1].received) == 5

    def test_unregistered_sender_rejected(self):
        sim = Simulator()
        radio = Radio(sim, perfect(2))
        with pytest.raises(ValueError):
            radio.broadcast(data_frame(0, BROADCAST))

    def test_duplicate_registration_rejected(self):
        sim = Simulator()
        radio = Radio(sim, perfect(2))
        radio.register(Listener(0))
        with pytest.raises(ValueError):
            radio.register(Listener(0))

    def test_broadcast_requires_broadcast_dst(self):
        sim, radio, _ = build(perfect(2))
        with pytest.raises(ValueError):
            radio.broadcast(data_frame(0, 1))

    def test_unicast_requires_concrete_dst(self):
        sim, radio, _ = build(perfect(2))
        with pytest.raises(ValueError):
            radio.unicast(data_frame(0, BROADCAST))


class TestCollisions:
    def test_hidden_terminal_collision(self):
        # 0 and 2 cannot hear each other but both reach 1: simultaneous
        # transmissions collide at 1.
        topo = line(3)
        sim, radio, listeners = build(topo, seed=7)
        # Force near-simultaneous sends with large payloads (long airtime).
        radio.broadcast(data_frame(0, BROADCAST, payload_bytes=29))
        radio.broadcast(data_frame(2, BROADCAST, payload_bytes=29))
        sim.run(1.0)
        # Node 1 gets at most one of the two frames intact (often zero).
        assert len(listeners[1].received) <= 1
        assert radio.stats.collisions >= 1

    def test_csma_avoids_mutually_audible_collisions(self):
        sim, radio, listeners = build(perfect(3), seed=11)
        for _ in range(10):
            radio.broadcast(data_frame(0, BROADCAST, payload_bytes=29))
            radio.broadcast(data_frame(1, BROADCAST, payload_bytes=29))
            sim.run(sim.now + 0.5)
        # With carrier sensing, most frames get through to node 2.
        assert len(listeners[2].received) >= 14

    def test_half_duplex_blocks_reception(self):
        sim, radio, listeners = build(perfect(2), seed=13)
        # Both transmit at the same instant: neither receives the other.
        radio.broadcast(data_frame(0, BROADCAST, payload_bytes=29))
        radio.broadcast(data_frame(1, BROADCAST, payload_bytes=29))
        sim.run(0.05)
        # CSMA initial backoff may serialise them; run enough and check
        # stats exist rather than a fixed outcome.
        assert radio.stats.frames_sent == 2


class TestAccountingHooks:
    def test_on_transmit_counts_every_attempt(self):
        events = []
        topo = from_loss_matrix([[1.0, 0.9], [0.0, 1.0]])
        sim = Simulator(seed=17)
        radio = Radio(sim, topo, on_transmit=lambda n, f: events.append((n, f.kind)))
        for i in range(2):
            radio.register(Listener(i))
        radio.unicast(data_frame(0, 1))
        sim.run(5.0)
        data_attempts = [e for e in events if e[1] is FrameKind.DATA]
        assert len(data_attempts) >= 1

    def test_on_delivery_reports_receiver(self):
        deliveries = []
        sim = Simulator()
        radio = Radio(
            sim, perfect(3), on_delivery=lambda s, r, f: deliveries.append((s, r))
        )
        for i in range(3):
            radio.register(Listener(i))
        radio.broadcast(data_frame(0, BROADCAST))
        sim.run(1.0)
        assert (0, 1) in deliveries and (0, 2) in deliveries
