"""Unit tests for the Figure 2 indexing algorithm and its extensions.

The paper's four properties (P1-P4) are each exercised directly: data rate
pulls values toward producers, query rate pulls them toward the
basestation, likely producers attract their values, and lossy links repel
ownership.
"""


from repro.core.config import ScoopConfig, ValueDomain
from repro.core.cost_model import NetworkModel
from repro.core.histogram import Histogram
from repro.core.indexing import (
    build_storage_index,
    evaluate_index_cost,
    evaluate_store_local_cost,
)
from repro.core.messages import SummaryMessage
from repro.core.statistics import BasestationStatistics

DOMAIN = ValueDomain(0, 19)


def make_config(**kw):
    kw.setdefault("n_nodes", 4)
    kw.setdefault("domain", DOMAIN)
    return ScoopConfig(**kw)


def summary(origin, values, neighbors, sid=-1, readings=10):
    return SummaryMessage(
        origin=origin,
        histogram=Histogram.from_values(values, 10),
        min_value=min(values),
        max_value=max(values),
        sum_values=sum(values),
        readings_since_last=readings,
        neighbors=tuple(neighbors),
        last_sid=sid,
    )


def line_statistics(config, node_values, quality=0.9):
    """Stats for a line 0 - 1 - 2 - 3 with the given per-node values."""
    stats = BasestationStatistics(config)
    now = 100.0
    for node, values in node_values.items():
        neighbors = [
            (nbr, quality)
            for nbr in (node - 1, node + 1)
            if 0 <= nbr < config.n_nodes
        ]
        stats.ingest_summary(summary(node, values, neighbors), now + node)
        # second summary to establish a data rate
        stats.ingest_summary(
            summary(node, values, neighbors), now + node + config.summary_interval
        )
        stats.observe_packet_header(node, node - 1 if node > 0 else None, now)
    return stats


class TestBasicPlacement:
    def test_p3_producer_attracts_own_values(self):
        config = make_config()
        stats = line_statistics(
            config, {1: [2, 3, 4], 2: [10, 11, 12], 3: [17, 18, 19]}
        )
        model = NetworkModel.from_statistics(stats)
        result = build_storage_index(1, stats, model, config, now=400.0)
        index = result.index
        assert index.owner_of(3) == 1
        assert index.owner_of(11) == 2
        assert index.owner_of(18) == 3

    def test_p2_query_rate_pulls_to_base(self):
        config = make_config()
        stats = line_statistics(config, {3: [10, 11, 12]})
        # Hammer value 11 with queries at an enormous rate relative to data.
        for k in range(2000):
            stats.record_query((10, 12), now=100.0 + k * 0.1)
        model = NetworkModel.from_statistics(stats)
        result = build_storage_index(1, stats, model, config, now=300.0)
        # The queried band moves to (or next to) the basestation.
        owner = result.index.owner_of(11)
        assert model.roundtrip(0, owner) <= model.roundtrip(0, 3)

    def test_p1_data_rate_pulls_to_producer(self):
        config = make_config()
        stats = line_statistics(config, {3: [10, 11, 12]})
        # Light query load on the same range.
        stats.record_query((10, 12), now=100.0)
        model = NetworkModel.from_statistics(stats)
        result = build_storage_index(1, stats, model, config, now=300.0)
        assert result.index.owner_of(11) == 3

    def test_p4_lossy_owner_avoided(self):
        config = make_config(n_nodes=4)
        stats = BasestationStatistics(config)
        now = 100.0
        # Nodes 1 and 2 both produce value 10; node 2 is behind a terrible
        # link, node 1 behind a good one.
        stats.ingest_summary(summary(1, [10] * 10, [(0, 0.95), (2, 0.9)]), now)
        stats.ingest_summary(summary(2, [10] * 10, [(1, 0.15)]), now)
        model = NetworkModel.from_statistics(stats)
        result = build_storage_index(1, stats, model, config, now=200.0)
        assert result.index.owner_of(10) in (0, 1)

    def test_no_stats_maps_everything_to_base(self):
        config = make_config()
        stats = BasestationStatistics(config)
        model = NetworkModel.from_statistics(stats)
        result = build_storage_index(1, stats, model, config, now=10.0)
        assert result.index.is_send_to_base(0)

    def test_chosen_index_not_worse_than_alternatives(self):
        config = make_config()
        stats = line_statistics(
            config, {1: [2, 3, 4], 2: [10, 11, 12], 3: [17, 18, 19]}
        )
        stats.record_query((0, 19), now=150.0)
        model = NetworkModel.from_statistics(stats)
        result = build_storage_index(1, stats, model, config, now=400.0)
        chosen_cost = evaluate_index_cost(result.index, stats, model, config, 400.0)
        from repro.core.storage_index import StorageIndex

        send_base = StorageIndex.uniform(9, DOMAIN, 0)
        base_cost = evaluate_index_cost(send_base, stats, model, config, 400.0)
        # tie-stabilisation allows up to the tolerance band above optimal
        assert chosen_cost <= base_cost * (1.0 + config.index_tie_tolerance) + 1e-9


class TestStoreLocalComparison:
    def test_store_local_cost_scales_with_query_rate(self):
        config = make_config()
        stats = line_statistics(config, {1: [5] * 5, 2: [9] * 5})
        model = NetworkModel.from_statistics(stats)
        low = evaluate_store_local_cost(stats, model, config, now=200.0)
        for k in range(100):
            stats.record_query((0, 19), now=100.0 + k)
        high = evaluate_store_local_cost(stats, model, config, now=200.0)
        assert high > low

    def test_fallback_disabled_by_default(self):
        config = make_config()
        stats = line_statistics(config, {1: [5] * 5})
        model = NetworkModel.from_statistics(stats)
        result = build_storage_index(1, stats, model, config, now=200.0)
        assert not result.chose_store_local

    def test_fallback_chosen_when_cheaper(self):
        # Zero queries: store-local costs nothing, any shipping costs more.
        config = make_config(allow_store_local_fallback=True)
        stats = line_statistics(config, {1: [5] * 5, 2: [5] * 5, 3: [5] * 5})
        model = NetworkModel.from_statistics(stats)
        result = build_storage_index(1, stats, model, config, now=200.0)
        if result.expected_cost > 0:
            assert result.chose_store_local


class TestExtensions:
    def test_owner_sets_reduce_expected_cost(self):
        config = make_config(max_owners_per_value=2)
        # Nodes 1 and 3 (far apart) produce the same value.
        stats = line_statistics(config, {1: [10] * 10, 3: [10] * 10})
        model = NetworkModel.from_statistics(stats)
        result = build_storage_index(1, stats, model, config, now=300.0)
        owners = result.index.owners_of(10)
        assert len(owners) <= 2
        single = build_storage_index(
            1,
            stats,
            model,
            ScoopConfig(n_nodes=4, domain=DOMAIN),
            now=300.0,
        )
        multi_cost = evaluate_index_cost(result.index, stats, model, config, 300.0)
        single_cost = evaluate_index_cost(single.index, stats, model, config, 300.0)
        assert multi_cost <= single_cost + 1e-9

    def test_range_placement_yields_coarse_ranges(self):
        config = make_config(range_placement_width=5)
        stats = line_statistics(
            config, {1: [2, 3, 4], 2: [10, 11, 12], 3: [17, 18, 19]}
        )
        model = NetworkModel.from_statistics(stats)
        result = build_storage_index(1, stats, model, config, now=300.0)
        for entry in result.index.compact():
            # every range boundary aligns to the placement grid
            assert entry.lo % 5 == 0 or entry.lo == DOMAIN.lo

    def test_previous_index_stabilises_ties(self):
        config = make_config()
        stats = line_statistics(config, {1: [10] * 10, 2: [10] * 10})
        model = NetworkModel.from_statistics(stats)
        first = build_storage_index(1, stats, model, config, now=300.0)
        second = build_storage_index(
            2, stats, model, config, now=301.0, previous=first.index
        )
        assert second.index.similarity(first.index) > 0.9
