"""Unit tests for failure injection: schedules, dead radios, cold reboots,
staleness eviction, and the E14 churn wiring."""

import dataclasses

import pytest

from repro.core.config import ScoopConfig, ValueDomain
from repro.core.messages import SummaryMessage
from repro.core.statistics import BasestationStatistics
from repro.experiments.runner import ExperimentSpec, build_failure_schedule
from repro.sim.failure import FailureEvent, FailureInjector, FailureSchedule
from repro.sim.flash import StoredReading
from repro.sim.metrics import DeliveryTracker
from repro.sim.packets import FrameKind
from repro.sim.topology import perfect
from tests.conftest import build_scoop_network


class TestFailureSchedule:
    def test_events_sorted_and_validated(self):
        schedule = FailureSchedule(
            [FailureEvent(3, at=20.0), FailureEvent(2, at=10.0, revive_at=30.0)]
        )
        assert [e.node for e in schedule] == [2, 3]
        assert len(schedule) == 2

    def test_basestation_cannot_be_killed(self):
        with pytest.raises(ValueError, match="basestation"):
            FailureEvent(0, at=5.0)

    def test_revive_must_follow_kill(self):
        with pytest.raises(ValueError, match="revive"):
            FailureEvent(1, at=5.0, revive_at=5.0)

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValueError, match="at most once"):
            FailureSchedule([FailureEvent(1, at=1.0), FailureEvent(1, at=2.0)])

    def test_from_rate_is_deterministic_per_seed(self):
        a = FailureSchedule.from_rate(0.5, range(1, 21), (100.0, 200.0), seed=7)
        b = FailureSchedule.from_rate(0.5, range(1, 21), (100.0, 200.0), seed=7)
        c = FailureSchedule.from_rate(0.5, range(1, 21), (100.0, 200.0), seed=8)
        assert a.events == b.events
        assert a.events != c.events
        assert len(a) == 10
        assert all(100.0 <= e.at <= 200.0 for e in a)

    def test_kill_order_is_not_biased_by_node_id(self):
        # Node ids encode position in the topology generators, so the
        # node-to-kill-time assignment must be random, not id-ordered.
        def kill_order(seed):
            schedule = FailureSchedule.from_rate(
                0.8, range(1, 21), (0.0, 100.0), seed=seed
            )
            return [e.node for e in sorted(schedule, key=lambda e: e.at)]

        orders = [kill_order(seed) for seed in range(6)]
        assert any(order != sorted(order) for order in orders)
        assert len({tuple(order) for order in orders}) > 1

    def test_from_rate_revive_fraction(self):
        schedule = FailureSchedule.from_rate(
            0.5, range(1, 21), (0.0, 50.0), seed=1, revive_frac=0.5, downtime=40.0
        )
        revived = [e for e in schedule if e.revive_at is not None]
        assert len(revived) == 5
        assert all(e.revive_at == pytest.approx(e.at + 40.0) for e in revived)

    def test_from_rate_bounds(self):
        with pytest.raises(ValueError):
            FailureSchedule.from_rate(1.5, range(1, 5), (0.0, 1.0), seed=1)
        with pytest.raises(ValueError, match="downtime"):
            FailureSchedule.from_rate(
                0.5, range(1, 5), (0.0, 1.0), seed=1, revive_frac=0.5
            )


class TestDeadNode:
    def test_killed_node_stops_transmitting_and_hearing(self, perfect6):
        net, base, nodes = perfect6
        net.boot_all(within=1.0)
        net.run(30.0)
        victim = nodes[2]
        sent_before = net.census.node_sent(
            victim.node_id, kinds=tuple(FrameKind)
        )
        assert sent_before > 0  # it was beaconing
        net.fail_node(victim.node_id)
        received_at_death = net.census.node_received(
            victim.node_id, kinds=tuple(FrameKind)
        )
        net.run(120.0)
        assert not victim.booted
        assert (
            net.census.node_sent(victim.node_id, kinds=tuple(FrameKind))
            == sent_before
        )
        assert (
            net.census.node_received(victim.node_id, kinds=tuple(FrameKind))
            == received_at_death
        )

    def test_kill_during_boot_stagger_cancels_the_boot(self, perfect6):
        net, _base, nodes = perfect6
        net.boot_all(within=10.0)  # boots are pending, none fired yet
        net.fail_node(nodes[0].node_id)
        net.run(30.0)
        assert not nodes[0].booted  # the pending boot must not resurrect it
        net.revive_node(nodes[0].node_id)
        net.run(60.0)
        assert nodes[0].booted and nodes[0].tree.joined

    def test_killing_the_basestation_is_rejected(self, perfect6):
        net, base, nodes = perfect6
        with pytest.raises(ValueError, match="basestation"):
            net.fail_node(base.node_id)

    def test_neighbors_forget_a_dead_node(self, small_config):
        config = dataclasses.replace(small_config, beacon_interval=2.0)
        net, base, nodes = build_scoop_network(perfect(6), config=config)
        net.boot_all(within=1.0)
        net.run(20.0)
        victim = nodes[0]
        assert any(n.linkest.knows(victim.node_id) for n in nodes[1:])
        net.fail_node(victim.node_id)
        # Run past the silence timeout; survivors must evict the dead
        # neighbor organically (no reset happens on their behalf).
        net.run(20.0 + nodes[1].linkest.silence_timeout + 60.0)
        for node in nodes[1:]:
            node.linkest.expire(net.sim.now)
            assert not node.linkest.knows(victim.node_id)
            assert node.tree.parent != victim.node_id

    def test_revive_cold_reboots_but_keeps_flash(self, perfect6):
        net, base, nodes = perfect6
        net.boot_all(within=1.0)
        net.run(30.0)
        victim = nodes[1]
        victim.flash.store(StoredReading(origin=victim.node_id, value=5, timestamp=9.0))
        victim.tree.note_uplink(4, via_child=4)
        victim.recent.add(9.0, 5)
        victim.readings_since_summary = 4
        net.fail_node(victim.node_id)
        net.run(40.0)
        net.revive_node(victim.node_id)
        assert victim.booted
        # RAM state gone, flash intact.
        assert victim.tree.parent is None
        assert victim.tree.descendants() == []
        assert len(victim.linkest) == 0
        assert victim.current_index is None
        assert len(victim.recent) == 0
        assert victim.readings_since_summary == 0
        assert len(victim.flash) == 1
        # It rejoins the tree from fresh beacons.
        net.run(net.sim.now + 60.0)
        assert victim.tree.joined

    def test_dead_node_does_not_answer_queries(self, perfect6):
        net, base, nodes = perfect6
        net.boot_all(within=1.0)
        net.run(60.0)
        victim, witness = nodes[0], nodes[1]
        net.fail_node(victim.node_id)
        net.run(70.0)
        from repro.core.query import Query

        result = base.issue_query(
            Query(
                query_id=901,
                time_range=(0.0, 200.0),
                node_list=frozenset({victim.node_id, witness.node_id}),
            )
        )
        net.run(net.sim.now + base.config.query_reply_window + 2.0)
        # A live node replies even with no matching tuples; the dead one
        # never does.
        assert witness.node_id in result.nodes_replied
        assert victim.node_id not in result.nodes_replied


class TestTrackerSurvival:
    def test_downtime_intervals(self):
        tracker = DeliveryTracker()
        tracker.node_failed(4, 100.0)
        assert tracker.node_down(4, 100.0)
        assert tracker.node_down(4, 500.0)
        assert not tracker.node_down(4, 99.9)
        tracker.node_revived(4, 200.0)
        assert tracker.node_down(4, 150.0)
        assert not tracker.node_down(4, 200.0)
        assert tracker.nodes_ever_failed() == {4}

    def test_completeness_excludes_dead_flash(self):
        tracker = DeliveryTracker()
        for i, target in enumerate((2, 2, 3, 3)):
            tracker.reading_produced(5, value=i, time=10.0 + i, intended_owner=target)
            tracker.reading_stored(5, i, 10.0 + i, stored_at=target, time=11.0 + i)
        tracker.reading_produced(5, value=9, time=20.0, intended_owner=2)  # lost
        tracker.node_failed(2, 50.0)
        assert tracker.retrieval_completeness(60.0) == pytest.approx(2 / 5)
        breakdown = tracker.survival_breakdown(60.0)
        assert breakdown["readings_produced"] == 5
        assert breakdown["readings_stored"] == 4
        assert breakdown["stored_on_dead_node"] == 2
        assert breakdown["retrievable"] == 2
        assert breakdown["nodes_failed"] == 1
        # Revival brings the flash back online.
        tracker.node_revived(2, 70.0)
        assert tracker.retrieval_completeness(80.0) == pytest.approx(4 / 5)


class TestStalenessEviction:
    def _stats(self, **config_kw):
        config = ScoopConfig(
            n_nodes=6,
            domain=ValueDomain(0, 20),
            summary_interval=20.0,
            node_staleness_intervals=2.0,
            **config_kw,
        )
        return BasestationStatistics(config)

    def _summary(self, origin):
        from repro.core.histogram import Histogram

        values = [5, 6, 7]
        return SummaryMessage(
            origin=origin,
            histogram=Histogram.from_values(values, 3),
            min_value=5,
            max_value=7,
            sum_values=18,
            readings_since_last=3,
            neighbors=(),
            last_sid=-1,
        )

    def test_silent_nodes_leave_the_filtered_views(self):
        stats = self._stats()
        stats.ingest_summary(self._summary(1), now=100.0)
        stats.ingest_summary(self._summary(2), now=150.0)
        # At t=130 both are fresh (window = 2 * 20 s = 40 s).
        assert stats.producer_nodes(130.0) == [1, 2]
        # At t=170 node 1 (last heard 100) is stale, node 2 fresh.
        assert stats.producer_nodes(170.0) == [2]
        assert 1 not in stats.known_nodes(170.0)
        assert stats.stale_nodes(170.0) == {1}
        # The unfiltered historical views never forget.
        assert stats.producer_nodes() == [1, 2]
        assert 1 in stats.known_nodes()

    def test_packet_headers_keep_nodes_alive(self):
        stats = self._stats()
        stats.ingest_summary(self._summary(1), now=100.0)
        stats.observe_packet_header(origin=1, origin_parent=3, now=190.0)
        # Header evidence refreshed node 1 (and its parent 3).
        assert stats.producer_nodes(200.0) == [1]
        assert 3 in stats.known_nodes(200.0)
        assert stats.stale_nodes(200.0) == set()

    def test_hearsay_grants_a_grace_window_but_never_refreshes(self):
        stats = self._stats()
        summary = self._summary(1)
        summary = dataclasses.replace(summary, neighbors=((7, 0.9),))
        stats.ingest_summary(summary, now=100.0)
        # Node 7 is known only from node 1's neighbor report: it gets a
        # full staleness window of candidacy from first sighting...
        assert 7 in stats.known_nodes(130.0)
        # ...but repeated hearsay does not keep it alive past the window
        # (neighbor tables report dead nodes for a while).
        later = dataclasses.replace(self._summary(1), neighbors=((7, 0.9),))
        stats.ingest_summary(later, now=139.0)
        assert 7 not in stats.known_nodes(141.0)
        assert 7 in stats.stale_nodes(141.0)

    def test_basestation_is_always_fresh(self):
        stats = self._stats()
        assert 0 in stats.known_nodes(1e9)


class TestChurnSpecWiring:
    def _spec(self, **kw):
        config = ScoopConfig(
            n_nodes=10,
            domain=ValueDomain(0, 20),
            stabilization=100.0,
            duration=200.0,
        )
        return ExperimentSpec(
            policy="scoop", workload="gaussian", scoop=config, seed=3, **kw
        )

    def test_zero_churn_builds_no_schedule(self):
        assert build_failure_schedule(self._spec()) is None

    def test_schedule_window_tracks_the_measured_phase(self):
        spec = self._spec(churn_rate=0.5)
        schedule = build_failure_schedule(spec)
        assert schedule is not None
        assert len(schedule) == round(0.5 * 9)
        for event in schedule:
            assert 100.0 + 0.1 * 200.0 <= event.at <= 100.0 + 0.5 * 200.0

    def test_churn_fields_validated(self):
        with pytest.raises(ValueError, match="churn_rate"):
            self._spec(churn_rate=1.5)
        with pytest.raises(ValueError, match="churn_revive_frac"):
            self._spec(churn_revive_frac=-0.1)
        with pytest.raises(ValueError, match="churn_downtime_frac"):
            self._spec(churn_downtime_frac=0.0)

    def test_churn_fields_enter_the_cache_key(self):
        from repro.experiments.runner import spec_key

        base = self._spec()
        churned = self._spec(churn_rate=0.2)
        assert spec_key(base) != spec_key(churned)

    def test_injector_arms_once(self, perfect6):
        net, _base, _nodes = perfect6
        schedule = FailureSchedule([FailureEvent(2, at=50.0)])
        injector = FailureInjector(net, schedule)
        injector.arm()
        with pytest.raises(RuntimeError, match="armed"):
            injector.arm()

    def test_injector_kills_and_revives_on_schedule(self, perfect6):
        net, _base, nodes = perfect6
        net.boot_all(within=1.0)
        schedule = FailureSchedule([FailureEvent(3, at=30.0, revive_at=60.0)])
        injector = FailureInjector(net, schedule)
        injector.arm()
        net.run(40.0)
        assert not net.motes[3].booted
        assert net.tracker.node_down(3, net.sim.now)
        net.run(70.0)
        assert net.motes[3].booted
        assert not net.tracker.node_down(3, net.sim.now)
        assert injector.kills == 1 and injector.revives == 1
