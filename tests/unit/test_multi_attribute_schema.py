"""Unit tests for the multi-attribute schema (E15): attribute registry,
wire formats, shared-epoch chunking, per-attribute statistics and query
validation."""

import pytest

from repro.core.config import AttributeSpec, ScoopConfig, ValueDomain
from repro.core.histogram import Histogram
from repro.core.messages import (
    AttributeSummary,
    DataMessage,
    MappingChunk,
    QueryMessage,
    SummaryMessage,
)
from repro.core.query import Query
from repro.core.statistics import BasestationStatistics
from repro.core.storage_index import (
    StorageIndex,
    chunk_index_set,
    indexes_from_chunks,
)
from repro.experiments.runner import ExperimentSpec, spec_key
from repro.workloads.multi import MultiAttributeWorkload
from repro.workloads.queries import QueryGenerator, QueryPlanConfig

D0 = ValueDomain(0, 20)
D1 = ValueDomain(0, 35)
ATTRS = (AttributeSpec("temperature", D0), AttributeSpec("light", D1))


def config(**kw):
    kw.setdefault("n_nodes", 6)
    kw.setdefault("domain", D0)
    return ScoopConfig(**kw)


class TestAttributeRegistry:
    def test_legacy_config_has_implicit_attribute(self):
        c = config()
        assert c.n_attributes == 1
        assert c.attribute_specs[0].name == "value"
        assert c.domain_of(0) == D0
        assert list(c.attribute_ids) == [0]

    def test_registry_domains_and_names(self):
        c = config(attributes=ATTRS)
        assert c.n_attributes == 2
        assert c.domain_of(1) == D1
        assert c.attribute_id("light") == 1
        with pytest.raises(ValueError):
            c.domain_of(2)
        with pytest.raises(ValueError):
            c.attribute_id("pressure")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            config(attributes=(AttributeSpec("t", D0), AttributeSpec("t", D1)))

    def test_attr0_domain_must_match_legacy_field(self):
        with pytest.raises(ValueError, match="legacy attribute"):
            config(attributes=(AttributeSpec("t", D1),))

    def test_serialization_round_trip(self):
        c = config(attributes=ATTRS)
        rebuilt = ScoopConfig.from_dict(c.to_dict())
        assert rebuilt == c
        assert rebuilt.attributes == ATTRS

    def test_spec_key_distinguishes_attribute_registries(self):
        base = ExperimentSpec(policy="scoop", workload="gaussian", scoop=config())
        multi = ExperimentSpec(
            policy="scoop", workload="gaussian", scoop=config(attributes=ATTRS)
        )
        assert spec_key(base) != spec_key(multi)
        assert spec_key(multi) == spec_key(ExperimentSpec.from_dict(multi.to_dict()))


class TestWireFormats:
    def test_legacy_messages_keep_paper_sizes(self):
        data = DataMessage(readings=[(1, 0.0, 2)], owner=3, sid=1)
        assert data.wire_bytes() == 5 + 4
        chunk = MappingChunk(sid=1, index=0, total=1, entries=((0, 5, 3),))
        assert chunk.wire_bytes() == 4 + 5

    def test_attribute_fields_are_priced(self):
        tagged = DataMessage(readings=[(1, 0.0, 2)], owner=3, sid=1, attr=1)
        untagged = DataMessage(readings=[(1, 0.0, 2)], owner=3, sid=1)
        assert tagged.wire_bytes() == untagged.wire_bytes() + 1
        q = dict(
            query_id=1,
            bitmap=frozenset({1}),
            time_range=(0.0, 1.0),
            value_range=(1, 2),
            issued_at=0.0,
        )
        assert (
            QueryMessage(attr=1, **q).wire_bytes()
            == QueryMessage(**q).wire_bytes() + 1
        )

    def test_summary_blocks_cost_bytes_not_messages(self):
        hist = Histogram.from_values([1, 2, 3], 4)
        block = AttributeSummary(
            attr=1, histogram=hist, min_value=1, max_value=3, sum_values=6, last_sid=2
        )
        base = SummaryMessage(
            origin=3,
            histogram=hist,
            min_value=1,
            max_value=3,
            sum_values=6,
            readings_since_last=3,
            neighbors=(),
            last_sid=1,
        )
        multi = SummaryMessage(
            origin=3,
            histogram=hist,
            min_value=1,
            max_value=3,
            sum_values=6,
            readings_since_last=3,
            neighbors=(),
            last_sid=1,
            extra=(block,),
        )
        assert multi.wire_bytes() == base.wire_bytes() + block.wire_bytes()
        assert [b.attr for b in multi.blocks()] == [0, 1]
        assert multi.blocks()[0].last_sid == 1


class TestSharedEpochChunks:
    def _indexes(self):
        return {
            0: StorageIndex.single_owner(7, D0, [3] * D0.size, attr=0),
            1: StorageIndex.single_owner(9, D1, [2] * 18 + [4] * 18, attr=1),
        }

    def test_epoch_round_trip_preserves_attr_sids(self):
        chunks = chunk_index_set(11, self._indexes())
        assert all(c.sid == 11 for c in chunks)
        rebuilt = indexes_from_chunks({0: D0, 1: D1}, chunks)
        assert rebuilt[0] == self._indexes()[0]
        assert rebuilt[1] == self._indexes()[1]
        assert rebuilt[0].sid == 7 and rebuilt[1].sid == 9

    def test_chunks_never_span_attributes(self):
        chunks = chunk_index_set(11, self._indexes(), max_entries=1)
        for chunk in chunks:
            assert len({chunk.attr}) == 1
        assert [c.index for c in chunks] == list(range(len(chunks)))

    def test_missing_chunk_rejected(self):
        chunks = chunk_index_set(11, self._indexes(), max_entries=1)
        with pytest.raises(ValueError):
            indexes_from_chunks({0: D0, 1: D1}, chunks[:-1])

    def test_unknown_attribute_rejected(self):
        chunks = chunk_index_set(11, self._indexes())
        with pytest.raises(ValueError, match="unknown attribute"):
            indexes_from_chunks({0: D0}, chunks)

    def test_legacy_single_index_chunks_untouched(self):
        index = StorageIndex.single_owner(5, D0, [3] * D0.size)
        rebuilt = StorageIndex.from_chunks(D0, index.to_chunks())
        assert rebuilt == index
        assert all(c.attr == 0 and c.attr_sid == -1 for c in index.to_chunks())


def summary_with_blocks(origin, last_sid=-1, extra=()):
    values = [5, 6, 7]
    return SummaryMessage(
        origin=origin,
        histogram=Histogram.from_values(values, 5),
        min_value=min(values),
        max_value=max(values),
        sum_values=sum(values),
        readings_since_last=3,
        neighbors=(),
        last_sid=last_sid,
        extra=tuple(extra),
    )


class TestPerAttributeStatistics:
    def test_blocks_route_to_their_attribute(self):
        stats = BasestationStatistics(config(attributes=ATTRS))
        block = AttributeSummary(
            attr=1,
            histogram=Histogram.from_values([20, 25], 5),
            min_value=20,
            max_value=25,
            sum_values=45,
            last_sid=4,
        )
        stats.ingest_summary(summary_with_blocks(2, last_sid=3, extra=[block]), 10.0)
        assert stats.producer_nodes(attr=0) == [2]
        assert stats.producer_nodes(attr=1) == [2]
        assert stats.max_value_seen(attr=0) == 7
        assert stats.max_value_seen(attr=1) == 25
        assert 4 in stats.sids_in_use(0.0, 20.0, attr=1)
        assert 3 in stats.sids_in_use(0.0, 20.0, attr=0)

    def test_per_attribute_query_statistics(self):
        stats = BasestationStatistics(config(attributes=ATTRS))
        stats.record_query((1, 3), now=0.0, attr=0)
        stats.record_query((10, 30), now=1.0, attr=1)
        stats.record_query((11, 31), now=2.0, attr=1)
        assert stats.queries_for(0).total_queries == 1
        assert stats.queries_for(1).total_queries == 2
        assert stats.queries is stats.queries_for(0)
        with pytest.raises(ValueError):
            stats.queries_for(2)

    def test_production_matrix_uses_attr_domain(self):
        stats = BasestationStatistics(config(attributes=ATTRS))
        stats.ingest_summary(summary_with_blocks(1), 10.0)
        assert stats.production_matrix([1], attr=1).shape == (1, D1.size)
        assert stats.production_matrix([1], attr=0).shape == (1, D0.size)


class TestQueryValidation:
    def test_out_of_domain_value_range_rejected_at_construction(self):
        with pytest.raises(ValueError, match="outside attribute"):
            Query(time_range=(0.0, 1.0), value_range=(0, 99), domain=D0)

    def test_in_domain_range_accepted(self):
        q = Query(time_range=(0.0, 1.0), value_range=(0, 20), domain=D0, attr=0)
        assert q.value_range == (0, 20)

    def test_negative_attribute_rejected(self):
        with pytest.raises(ValueError, match="attribute id"):
            Query(time_range=(0.0, 1.0), attr=-1)

    def test_generator_round_robins_attributes_within_domains(self):
        import random

        plan = QueryPlanConfig(n_attributes=2)
        generator = QueryGenerator(
            plan, D0, [1, 2, 3], random.Random(7), attribute_domains=[D0, D1]
        )
        queries = [generator.next_query(100.0) for _ in range(6)]
        assert [q.attr for q in queries] == [0, 1, 0, 1, 0, 1]
        for q in queries:
            lo, hi = q.value_range
            domain = (D0, D1)[q.attr]
            assert lo in domain and hi in domain

    def test_plan_needs_enough_domains(self):
        import random

        plan = QueryPlanConfig(n_attributes=3)
        with pytest.raises(ValueError, match="domains"):
            QueryGenerator(
                plan, D0, [1], random.Random(1), attribute_domains=[D0, D1]
            )


class TestMultiAttributeWorkload:
    def test_attr0_identical_to_base_family(self):
        from repro.workloads import make_workload

        multi = MultiAttributeWorkload("gaussian", ATTRS, 6, seed=3)
        single = make_workload("gaussian", D0, 6, seed=3)
        for node in range(1, 6):
            for t in (0.0, 5.0, 10.0):
                assert multi.sample_attr(node, t, 0) == single.sample(node, t)

    def test_streams_deterministic_and_in_domain(self):
        multi = MultiAttributeWorkload("gaussian", ATTRS, 6, seed=3)
        replay = MultiAttributeWorkload("gaussian", ATTRS, 6, seed=3)
        for node in range(1, 6):
            for t in (0.0, 5.0, 10.0):
                v = multi.sample_attr(node, t, 1)
                assert v == replay.sample_attr(node, t, 1)
                assert v in D1

    def test_correlation_pulls_streams_together(self):
        independent = MultiAttributeWorkload(
            "gaussian", ATTRS, 20, seed=3, correlation=0.0
        )
        locked = MultiAttributeWorkload(
            "gaussian", ATTRS, 20, seed=3, correlation=1.0
        )
        times = [float(t) for t in range(0, 100, 5)]

        def spread(workload):
            total = 0.0
            for node in range(1, 20):
                for t in times:
                    v0 = workload.sample_attr(node, t, 0) / D0.size
                    v1 = workload.sample_attr(node, t, 1) / D1.size
                    total += abs(v0 - v1)
            return total

        assert spread(locked) < spread(independent)

    def test_unknown_attribute_rejected(self):
        multi = MultiAttributeWorkload("gaussian", ATTRS, 6, seed=3)
        with pytest.raises(ValueError):
            multi.sample_attr(1, 0.0, 2)
