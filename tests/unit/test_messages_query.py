"""Unit tests for message payloads, frames and query objects."""

import pytest

from repro.baselines.hash_static import AnalyticalHashModel
from repro.baselines.local import LocalBasestation
from repro.core.basestation import Basestation
from repro.core.config import ScoopConfig, ValueDomain
from repro.core.messages import (
    DataMessage,
    MappingChunk,
    QueryMessage,
    ReplyMessage,
    bitmap_wire_bytes,
)
from repro.core.query import Query, QueryResult
from repro.sim.network import Network
from repro.sim.packets import (
    ACK_BYTES,
    BROADCAST,
    HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
    Frame,
    FrameKind,
)
from repro.sim.topology import perfect
from repro.workloads import make_workload
from repro.workloads.queries import QueryPlanConfig


class TestFrames:
    def test_size_includes_header(self):
        msg = DataMessage(readings=[(1, 0.0, 2)], owner=3, sid=1)
        frame = Frame(src=1, dst=2, kind=FrameKind.DATA, payload=msg)
        assert frame.size_bytes() == HEADER_BYTES + msg.wire_bytes()

    def test_payload_capped_at_tos_msg(self):
        msg = DataMessage(readings=[(1, 0.0, 2)] * 20, owner=3, sid=1)
        frame = Frame(src=1, dst=2, kind=FrameKind.DATA, payload=msg)
        assert frame.size_bytes() == HEADER_BYTES + MAX_PAYLOAD_BYTES

    def test_ack_size_fixed(self):
        frame = Frame(src=1, dst=2, kind=FrameKind.ACK, payload=None)
        assert frame.size_bytes() == ACK_BYTES

    def test_origin_defaults_to_src(self):
        frame = Frame(src=7, dst=2, kind=FrameKind.BEACON, payload=None)
        assert frame.origin == 7

    def test_forward_preserves_origin_decrements_ttl(self):
        frame = Frame(
            src=1,
            dst=2,
            kind=FrameKind.SUMMARY,
            payload=None,
            origin=9,
            origin_parent=4,
            ttl=10,
        )
        fwd = frame.copy_for_forward(src=2, dst=3, seqno=77)
        assert fwd.origin == 9 and fwd.origin_parent == 4
        assert fwd.src == 2 and fwd.dst == 3
        assert fwd.ttl == 9
        assert fwd.frame_id != frame.frame_id

    def test_broadcast_flag(self):
        assert Frame(src=1, dst=BROADCAST, kind=FrameKind.QUERY).is_broadcast()

    def test_payload_without_wire_bytes_rejected(self):
        frame = Frame(src=1, dst=2, kind=FrameKind.DATA, payload=object())
        with pytest.raises(TypeError):
            frame.size_bytes()


class TestPayloads:
    def test_data_message_values(self):
        msg = DataMessage(readings=[(5, 1.0, 2), (7, 2.0, 2)], owner=1, sid=3)
        assert msg.values() == [5, 7]

    def test_mapping_chunk_bounds(self):
        MappingChunk(sid=1, index=0, total=1, entries=())
        with pytest.raises(ValueError):
            MappingChunk(sid=1, index=2, total=2, entries=())

    def test_query_matches_value_and_time(self):
        q = QueryMessage(
            query_id=1,
            bitmap=frozenset({2}),
            time_range=(10.0, 20.0),
            value_range=(5, 9),
            issued_at=20.0,
        )
        assert q.matches(7, 15.0)
        assert not q.matches(7, 25.0)
        assert not q.matches(4, 15.0)

    def test_query_node_filter(self):
        q = QueryMessage(
            query_id=1,
            bitmap=frozenset({2, 3}),
            time_range=(0.0, 50.0),
            value_range=None,
            issued_at=50.0,
            node_filter=frozenset({3}),
        )
        assert q.matches(1, 10.0, producer=3)
        assert not q.matches(1, 10.0, producer=2)

    def test_reply_wire_grows_with_readings(self):
        small = ReplyMessage(query_id=1, origin=2, readings=[])
        big = ReplyMessage(query_id=1, origin=2, readings=[(1, 0.0, 2)] * 5)
        assert big.wire_bytes() > small.wire_bytes()


class TestBitmapWidth:
    """The query bitmap is derived from the configured network capacity:
    ceil(max_network_size / 8) bytes, consistently across policies."""

    def test_bitmap_bytes_from_capacity(self):
        for capacity, expected in ((64, 8), (128, 16), (200, 25), (256, 32)):
            assert bitmap_wire_bytes(capacity) == expected
            config = ScoopConfig(max_network_size=capacity)
            assert config.query_bitmap_bytes == expected
        with pytest.raises(ValueError):
            bitmap_wire_bytes(0)

    def test_population_beyond_capacity_rejected(self):
        with pytest.raises(ValueError):
            ScoopConfig(n_nodes=129)  # paper default capacity is 128
        config = ScoopConfig(n_nodes=200, max_network_size=256)
        assert config.query_bitmap_bytes == 32
        with pytest.raises(ValueError):
            ScoopConfig(max_network_size=1)

    def test_query_wire_bytes_scale_with_bitmap(self):
        def query(bitmap_bytes, node_filter=None):
            return QueryMessage(
                query_id=1,
                bitmap=frozenset({1, 2}),
                time_range=(0.0, 10.0),
                value_range=(0, 5),
                issued_at=10.0,
                node_filter=node_filter,
                bitmap_bytes=bitmap_bytes,
            )

        # bitmap + qid(2) + time range(8) + value range(4)
        assert query(16).wire_bytes() == 16 + 14
        assert query(32).wire_bytes() == 32 + 14
        # a node filter is a second bitmap of the same width
        assert query(32, node_filter=frozenset({2})).wire_bytes() == 2 * 32 + 14

    def test_bitmap_capacity_enforced_on_node_ids(self):
        def query(node, bitmap_bytes):
            return QueryMessage(
                query_id=1,
                bitmap=frozenset({node}),
                time_range=(0.0, 10.0),
                value_range=None,
                issued_at=10.0,
                bitmap_bytes=bitmap_bytes,
            )

        with pytest.raises(ValueError):
            query(200, bitmap_bytes=16)  # bit 200 of a 128-bit map
        assert query(200, bitmap_bytes=32).wire_bytes() == 32 + 14


class TestQueryPricingAudit:
    """SCOOP and LOCAL basestations price the same query identically
    from the deployment capacity; the analytical HASH model accepts the
    widened capacity too."""

    def _issued_query(self, base_cls, capacity):
        config = ScoopConfig(
            n_nodes=8, domain=ValueDomain(0, 20), max_network_size=capacity
        )
        net = Network(perfect(8), seed=1)
        base = base_cls(net.sim, net.radio, config=config)
        net.add_mote(base)
        sent = []
        original = base.broadcast
        base.broadcast = lambda kind, payload, **kw: (
            sent.append(payload),
            original(kind, payload, **kw),
        )
        base.issue_query(Query(time_range=(0.0, 10.0), node_list=frozenset({1, 2, 3})))
        return next(m for m in sent if isinstance(m, QueryMessage))

    @pytest.mark.parametrize("capacity,bitmap", [(128, 16), (256, 32)])
    def test_policies_price_queries_consistently(self, capacity, bitmap):
        scoop_msg = self._issued_query(Basestation, capacity)
        local_msg = self._issued_query(LocalBasestation, capacity)
        assert scoop_msg.bitmap_bytes == bitmap
        assert local_msg.bitmap_bytes == bitmap
        # node-list query: target bitmap + filter bitmap + fixed fields
        assert scoop_msg.wire_bytes() == 2 * bitmap + 14
        assert scoop_msg.wire_bytes() == local_msg.wire_bytes()

    def test_hash_analytical_accepts_widened_capacity(self):
        config = ScoopConfig(n_nodes=8, domain=ValueDomain(0, 20), max_network_size=256)
        topo = perfect(8)
        workload = make_workload("gaussian", config.domain, 8, seed=1)
        model = AnalyticalHashModel(topo, config)
        estimate = model.estimate(workload, QueryPlanConfig(), duration=60.0)
        assert estimate.total > 0


class TestQueryObjects:
    def test_valid_value_query(self):
        q = Query(time_range=(0.0, 10.0), value_range=(1, 5))
        assert q.node_list is None

    def test_node_list_query(self):
        q = Query(time_range=(0.0, 10.0), node_list=frozenset({1, 2}))
        assert q.value_range is None

    def test_unique_ids(self):
        a = Query(time_range=(0.0, 1.0))
        b = Query(time_range=(0.0, 1.0))
        assert a.query_id != b.query_id

    def test_invalid_combinations(self):
        with pytest.raises(ValueError):
            Query(time_range=(5.0, 1.0))
        with pytest.raises(ValueError):
            Query(time_range=(0.0, 1.0), value_range=(1, 2), node_list=frozenset({1}))
        with pytest.raises(ValueError):
            Query(time_range=(0.0, 1.0), value_range=(5, 2))
        with pytest.raises(ValueError):
            Query(time_range=(0.0, 1.0), node_list=frozenset())


class TestQueryResult:
    def _result(self):
        return QueryResult(
            query=Query(time_range=(0.0, 10.0), value_range=(0, 5)),
            nodes_targeted={1, 2},
        )

    def test_dedup_on_add(self):
        result = self._result()
        result.add_readings([(3, 1.0, 1), (3, 1.0, 1), (4, 2.0, 1)])
        assert len(result.readings) == 2

    def test_dedup_across_calls(self):
        result = self._result()
        result.add_readings([(3, 1.0, 1)])
        result.add_readings([(3, 1.0, 1)])
        assert len(result.readings) == 1

    def test_reply_fraction(self):
        result = self._result()
        assert result.reply_fraction == 0.0
        result.nodes_replied.add(1)
        assert result.reply_fraction == pytest.approx(0.5)
        result.nodes_replied.add(2)
        assert result.complete

    def test_no_targets_complete(self):
        result = QueryResult(query=Query(time_range=(0.0, 1.0)))
        assert result.complete
        assert result.reply_fraction == 1.0
