"""Unit tests for message payloads, frames and query objects."""

import pytest

from repro.core.messages import (
    DataMessage,
    MappingChunk,
    QueryMessage,
    ReplyMessage,
)
from repro.core.query import Query, QueryResult
from repro.sim.packets import (
    ACK_BYTES,
    BROADCAST,
    HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
    Frame,
    FrameKind,
)


class TestFrames:
    def test_size_includes_header(self):
        msg = DataMessage(readings=[(1, 0.0, 2)], owner=3, sid=1)
        frame = Frame(src=1, dst=2, kind=FrameKind.DATA, payload=msg)
        assert frame.size_bytes() == HEADER_BYTES + msg.wire_bytes()

    def test_payload_capped_at_tos_msg(self):
        msg = DataMessage(readings=[(1, 0.0, 2)] * 20, owner=3, sid=1)
        frame = Frame(src=1, dst=2, kind=FrameKind.DATA, payload=msg)
        assert frame.size_bytes() == HEADER_BYTES + MAX_PAYLOAD_BYTES

    def test_ack_size_fixed(self):
        frame = Frame(src=1, dst=2, kind=FrameKind.ACK, payload=None)
        assert frame.size_bytes() == ACK_BYTES

    def test_origin_defaults_to_src(self):
        frame = Frame(src=7, dst=2, kind=FrameKind.BEACON, payload=None)
        assert frame.origin == 7

    def test_forward_preserves_origin_decrements_ttl(self):
        frame = Frame(
            src=1,
            dst=2,
            kind=FrameKind.SUMMARY,
            payload=None,
            origin=9,
            origin_parent=4,
            ttl=10,
        )
        fwd = frame.copy_for_forward(src=2, dst=3, seqno=77)
        assert fwd.origin == 9 and fwd.origin_parent == 4
        assert fwd.src == 2 and fwd.dst == 3
        assert fwd.ttl == 9
        assert fwd.frame_id != frame.frame_id

    def test_broadcast_flag(self):
        assert Frame(src=1, dst=BROADCAST, kind=FrameKind.QUERY).is_broadcast()

    def test_payload_without_wire_bytes_rejected(self):
        frame = Frame(src=1, dst=2, kind=FrameKind.DATA, payload=object())
        with pytest.raises(TypeError):
            frame.size_bytes()


class TestPayloads:
    def test_data_message_values(self):
        msg = DataMessage(readings=[(5, 1.0, 2), (7, 2.0, 2)], owner=1, sid=3)
        assert msg.values() == [5, 7]

    def test_mapping_chunk_bounds(self):
        MappingChunk(sid=1, index=0, total=1, entries=())
        with pytest.raises(ValueError):
            MappingChunk(sid=1, index=2, total=2, entries=())

    def test_query_matches_value_and_time(self):
        q = QueryMessage(
            query_id=1,
            bitmap=frozenset({2}),
            time_range=(10.0, 20.0),
            value_range=(5, 9),
            issued_at=20.0,
        )
        assert q.matches(7, 15.0)
        assert not q.matches(7, 25.0)
        assert not q.matches(4, 15.0)

    def test_query_node_filter(self):
        q = QueryMessage(
            query_id=1,
            bitmap=frozenset({2, 3}),
            time_range=(0.0, 50.0),
            value_range=None,
            issued_at=50.0,
            node_filter=frozenset({3}),
        )
        assert q.matches(1, 10.0, producer=3)
        assert not q.matches(1, 10.0, producer=2)

    def test_reply_wire_grows_with_readings(self):
        small = ReplyMessage(query_id=1, origin=2, readings=[])
        big = ReplyMessage(query_id=1, origin=2, readings=[(1, 0.0, 2)] * 5)
        assert big.wire_bytes() > small.wire_bytes()


class TestQueryObjects:
    def test_valid_value_query(self):
        q = Query(time_range=(0.0, 10.0), value_range=(1, 5))
        assert q.node_list is None

    def test_node_list_query(self):
        q = Query(time_range=(0.0, 10.0), node_list=frozenset({1, 2}))
        assert q.value_range is None

    def test_unique_ids(self):
        a = Query(time_range=(0.0, 1.0))
        b = Query(time_range=(0.0, 1.0))
        assert a.query_id != b.query_id

    def test_invalid_combinations(self):
        with pytest.raises(ValueError):
            Query(time_range=(5.0, 1.0))
        with pytest.raises(ValueError):
            Query(time_range=(0.0, 1.0), value_range=(1, 2), node_list=frozenset({1}))
        with pytest.raises(ValueError):
            Query(time_range=(0.0, 1.0), value_range=(5, 2))
        with pytest.raises(ValueError):
            Query(time_range=(0.0, 1.0), node_list=frozenset())


class TestQueryResult:
    def _result(self):
        return QueryResult(
            query=Query(time_range=(0.0, 10.0), value_range=(0, 5)),
            nodes_targeted={1, 2},
        )

    def test_dedup_on_add(self):
        result = self._result()
        result.add_readings([(3, 1.0, 1), (3, 1.0, 1), (4, 2.0, 1)])
        assert len(result.readings) == 2

    def test_dedup_across_calls(self):
        result = self._result()
        result.add_readings([(3, 1.0, 1)])
        result.add_readings([(3, 1.0, 1)])
        assert len(result.readings) == 1

    def test_reply_fraction(self):
        result = self._result()
        assert result.reply_fraction == 0.0
        result.nodes_replied.add(1)
        assert result.reply_fraction == pytest.approx(0.5)
        result.nodes_replied.add(2)
        assert result.complete

    def test_no_targets_complete(self):
        result = QueryResult(query=Query(time_range=(0.0, 1.0)))
        assert result.complete
        assert result.reply_fraction == 1.0
