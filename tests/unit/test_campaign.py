"""Campaign engine tests: registry, spec serialization, cache, parallelism.

The determinism tests run real (down-scaled, 14-node) simulations; every
other test avoids the simulator entirely.
"""

import dataclasses
import json

import pytest

from typing import Tuple

from repro.core.basestation import Basestation
from repro.core.config import (
    ScoopConfig,
    ValueDomain,
    canonical_key,
    dataclass_from_dict,
    dataclass_to_dict,
)
from repro.experiments import __main__ as cli
from repro.experiments.cache import CACHE_SCHEMA_VERSION, ResultCache
from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    Trial,
    TrialResult,
    run_cached,
    run_campaign,
)
from repro.experiments.registry import (
    is_registered,
    known_policies,
    plugin_policies,
    policy_factory,
    register_policy,
    unregister_policy,
)
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    build_motes,
    spec_key,
)
from repro.experiments.scenarios import scenario_names, scenario_trials, smoke
from repro.sim.network import Network
from repro.sim.topology import perfect
from repro.workloads import make_workload
from repro.workloads.queries import QueryPlanConfig


def small_spec(policy="scoop", seed=1, **config_overrides):
    """A 14-node spec that simulates in a fraction of a second."""
    config = dict(
        n_nodes=14,
        domain=ValueDomain(0, 20),
        sample_interval=5.0,
        query_interval=10.0,
        summary_interval=20.0,
        remap_interval=40.0,
        stabilization=60.0,
        duration=120.0,
        beacon_interval=5.0,
        query_reply_window=8.0,
    )
    config.update(config_overrides)
    return ExperimentSpec(
        policy=policy, workload="gaussian", scoop=ScoopConfig(**config), seed=seed
    )


def fake_result(spec, total=100.0, **kw):
    return ExperimentResult(
        spec=spec,
        breakdown={"data": total / 2, "summary": total / 2},
        total_messages=total,
        **kw,
    )


class TestRegistry:
    def test_paper_policies_registered(self):
        for name in ("scoop", "local", "base", "hash"):
            assert is_registered(name)
            assert name in known_policies()

    def test_register_round_trip(self):
        factory = policy_factory("scoop")
        register_policy("scoop-clone", factory)
        try:
            assert is_registered("scoop-clone")
            assert policy_factory("scoop-clone") is factory
            # A registered policy passes ExperimentSpec validation and
            # builds through the same runner pipeline as the built-ins.
            spec = ExperimentSpec(
                policy="scoop-clone",
                workload="gaussian",
                scoop=ScoopConfig(n_nodes=5, domain=ValueDomain(0, 20)),
            )
            net = Network(perfect(5), seed=1)
            workload = make_workload("gaussian", spec.scoop.domain, 5, seed=1)
            base, nodes = build_motes(spec, net, workload)
            assert isinstance(base, Basestation)
            assert len(nodes) == 4
        finally:
            unregister_policy("scoop-clone")
        assert not is_registered("scoop-clone")
        with pytest.raises(ValueError):
            ExperimentSpec(policy="scoop-clone")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_policy("scoop", policy_factory("scoop"))

    def test_unregister_unknown_rejected(self):
        with pytest.raises(KeyError):
            unregister_policy("never-registered")

    def test_unknown_policy_lists_registered(self):
        with pytest.raises(ValueError, match="scoop"):
            policy_factory("teleport")


class TestSpecSerialization:
    def _specs(self):
        return [
            ExperimentSpec(),
            small_spec(policy="hash", seed=9),
            dataclasses.replace(
                ExperimentSpec(policy="local", workload="real", seed=3),
                query_plan=QueryPlanConfig(kind="nodes", node_frac=0.4),
                topology_kind="geometric",
            ),
        ]

    def test_to_from_dict_is_identity(self):
        for spec in self._specs():
            clone = ExperimentSpec.from_dict(spec.to_dict())
            assert clone == spec
            # Tuple-typed config fields survive the list round trip.
            assert isinstance(clone.scoop.query_width_frac, tuple)
            assert isinstance(clone.query_plan.width_frac, tuple)

    def test_to_dict_is_json_ready(self):
        for spec in self._specs():
            blob = json.dumps(spec.to_dict(), sort_keys=True)
            assert ExperimentSpec.from_dict(json.loads(blob)) == spec

    def test_spec_key_stability_and_sensitivity(self):
        spec = small_spec()
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert spec_key(spec) == spec_key(clone)
        assert spec_key(spec) != spec_key(dataclasses.replace(spec, seed=2))
        assert spec_key(spec) != spec_key(spec, analytical=True)
        assert len(spec_key(spec)) == 64  # sha256 hex

    def test_canonical_key_is_order_insensitive(self):
        assert canonical_key({"a": 1, "b": 2}) == canonical_key({"b": 2, "a": 1})

    def test_workload_validated_like_policy(self):
        with pytest.raises(ValueError, match="workload"):
            ExperimentSpec(workload="typo")

    def test_generic_serializer_restores_future_tuple_fields(self):
        # The serializer discovers tuple-typed fields from type hints, so
        # fields added to any config dataclass later round-trip without
        # touching serialization code.
        @dataclasses.dataclass
        class Future:
            pair: Tuple[int, int] = (1, 2)
            name: str = "x"

        obj = Future(pair=(3, 4))
        data = json.loads(json.dumps(dataclass_to_dict(obj)))
        assert data["pair"] == [3, 4]
        assert dataclass_from_dict(Future, data) == obj

    def test_result_round_trip(self):
        result = fake_result(small_spec(), total=42.0, queries_issued=7)
        clone = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone == result


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec()
        key = spec_key(spec)
        assert cache.get(key) is None
        cache.put(key, fake_result(spec))
        assert cache.get(key).total_messages == 100.0
        assert key in cache

    def test_survives_across_cache_instances(self, tmp_path):
        spec = small_spec()
        key = spec_key(spec)
        ResultCache(tmp_path).put(key, fake_result(spec, total=7.0))
        fresh = ResultCache(tmp_path)
        hit = fresh.get(key)
        assert hit is not None and hit.total_messages == 7.0
        assert fresh.disk_entries() == 1

    def test_corrupt_and_stale_entries_are_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "deadbeef.json").write_text("{not json")
        assert cache.get("deadbeef") is None
        stale = {"schema": CACHE_SCHEMA_VERSION + 1, "result": {}}
        (tmp_path / "stale.json").write_text(json.dumps(stale))
        assert cache.get("stale") is None

    def test_clear_sweeps_orphaned_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k1", fake_result(small_spec()))
        cache.put("k2", fake_result(small_spec(seed=2)))
        # A writer killed between write_text and os.replace leaves a .tmp.
        (tmp_path / "k3.12345.tmp").write_text("{}")
        assert cache.clear() == 3
        assert cache.disk_entries() == 0
        assert not list(tmp_path.glob("*.tmp"))
        assert cache.get("k1") is None

    def test_unwritable_root_degrades_to_memory(self, tmp_path, monkeypatch):
        import pathlib

        cache = ResultCache(tmp_path / "sub")

        def deny(self, *a, **kw):
            raise PermissionError("read-only")

        monkeypatch.setattr(pathlib.Path, "mkdir", deny)
        with pytest.warns(RuntimeWarning, match="not writable"):
            cache.put("k", fake_result(small_spec()))
        # The result survives in memory; nothing landed on disk.
        assert cache.get("k").total_messages == 100.0
        monkeypatch.undo()
        assert cache.disk_entries() == 0

    def test_run_cached_executes_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec(policy="hash")
        first = run_cached(spec, analytical=True, cache=cache)
        again = run_cached(spec, analytical=True, cache=cache)
        assert again == first
        # A fresh process-equivalent (new cache over the same dir) also hits.
        disk_hit = run_cached(spec, analytical=True, cache=ResultCache(tmp_path))
        assert disk_hit == first


class TestCampaignExpansion:
    def test_scenarios_expand_with_labels(self):
        for name in scenario_names():
            trials = scenario_trials(name)
            assert trials, name
            for label, spec in trials:
                assert label and isinstance(spec, ExperimentSpec)

    def test_alias_expansion(self):
        assert scenario_trials("E2") == scenario_trials("fig3_middle")
        with pytest.raises(ValueError):
            scenario_trials("E99")

    def test_from_scenario_multi_seed(self):
        campaign = Campaign.from_scenario("smoke", seeds=(1, 2))
        assert len(campaign.trials) == 2 * len(smoke())
        assert {t.spec.seed for t in campaign.trials} == {1, 2}
        # Same labels in both seed replicas.
        labels = [t.label for t in campaign.trials]
        assert labels[: len(smoke())] == labels[len(smoke()):]

    def test_hash_trials_default_analytical(self):
        campaign = Campaign.from_scenario("fig3_middle")
        by_policy = {t.spec.policy: t for t in campaign.trials}
        assert by_policy["hash"].analytical
        assert not by_policy["scoop"].analytical

    def test_scale_override(self):
        small = Campaign.from_scenario("loss_rates", scale=0.1)
        full = Campaign.from_scenario("loss_rates", scale=1.0)
        assert (
            small.trials[0].spec.scoop.duration
            < full.trials[0].spec.scoop.duration == 2400.0
        )

    def test_explicit_scale_beats_repro_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        small = Campaign.from_scenario("loss_rates", scale=0.1)
        assert small.trials[0].spec.scoop.duration < 2400.0
        # Env flags are restored after expansion.
        import os
        assert os.environ["REPRO_FULL"] == "1"

    def test_aggregates_mean_stdev(self):
        spec1, spec2 = small_spec(seed=1), small_spec(seed=2)
        result = CampaignResult(
            name="x",
            trials=[
                TrialResult(Trial(spec1, label="a"), fake_result(spec1, 10.0)),
                TrialResult(Trial(spec2, label="a"), fake_result(spec2, 14.0)),
            ],
        )
        (agg,) = result.aggregates()
        assert agg.label == "a" and agg.n == 2 and agg.seeds == (1, 2)
        assert agg.mean_total == pytest.approx(12.0)
        assert agg.stdev_total == pytest.approx(2.828, abs=0.01)
        assert agg.mean_breakdown["data"] == pytest.approx(6.0)


class TestCampaignExecution:
    """Real (down-scaled) simulations: the acceptance-criteria checks."""

    def _campaign(self):
        specs = [small_spec(policy=p, seed=s) for p in ("scoop", "local")
                 for s in (1, 2)]
        return Campaign.from_specs("determinism", specs)

    def test_serial_parallel_identical_and_cache_replays(self, tmp_path):
        serial = run_campaign(
            self._campaign(), jobs=1, cache=ResultCache(tmp_path / "a")
        )
        parallel = run_campaign(
            self._campaign(), jobs=4, cache=ResultCache(tmp_path / "b")
        )
        assert serial.executed == parallel.executed == 4
        for s, p in zip(serial.trials, parallel.trials):
            assert s.trial.key == p.trial.key
            # Every spec-determined field is bit-identical; wall-clock
            # timing (metrics.wall_clock_s) is the one execution-specific
            # field and is excluded by deterministic_dict().
            assert s.result.deterministic_dict() == p.result.deterministic_dict()
            assert s.result.metrics.wall_clock_s > 0
            assert p.result.metrics.wall_clock_s > 0
            assert s.result.total_messages == p.result.total_messages
            assert s.result.breakdown == p.result.breakdown

        # A repeat over the serial run's disk cache executes nothing and
        # reproduces every result exactly — including the recorded timing,
        # so the full dicts match here.
        replay = run_campaign(
            self._campaign(), jobs=4, cache=ResultCache(tmp_path / "a")
        )
        assert replay.executed == 0 and replay.cached == 4
        for s, r in zip(serial.trials, replay.trials):
            assert r.from_cache
            assert r.result.to_dict() == s.result.to_dict()

    def test_failing_trial_preserves_completed_results(self, tmp_path):
        good = small_spec()
        # n=8 reliably yields an unconnected topology -> RuntimeError at
        # run time (spec validation passes).
        bad = small_spec(n_nodes=8)
        cache = ResultCache(tmp_path)
        with pytest.raises(RuntimeError):
            run_campaign(Campaign.from_specs("partial", [good, bad]), cache=cache)
        # The completed sibling was cached before the failure surfaced.
        assert cache.get(spec_key(good)) is not None
        replay = run_campaign(Campaign.from_specs("good", [good]), cache=cache)
        assert replay.executed == 0 and replay.cached == 1

    def test_duplicate_specs_simulate_once(self, tmp_path):
        spec = small_spec()
        campaign = Campaign.from_specs("dup", [spec, spec])
        out = run_campaign(campaign, cache=ResultCache(tmp_path))
        assert out.executed == 1 and out.cached == 1
        assert out.results[0].to_dict() == out.results[1].to_dict()

    def test_node_churn_grid_parallel_matches_serial(self, tmp_path):
        # E14 determinism: the failure schedule is derived from the spec
        # alone, so a churn campaign fanned out over a process pool is
        # bit-identical to a serial run. The registered grid is shrunk to
        # the 14-node fast profile (structure, labels, and churn rates of
        # the real E14 grid are preserved).
        trials = scenario_trials("node_churn")
        assert len(trials) > 2
        fast = dict(
            n_nodes=14,
            domain=ValueDomain(0, 20),
            sample_interval=5.0,
            query_interval=10.0,
            summary_interval=20.0,
            remap_interval=40.0,
            stabilization=60.0,
            duration=240.0,
            beacon_interval=5.0,
            query_reply_window=8.0,
            node_staleness_intervals=2.0,
        )
        shrunk = [
            (label, dataclasses.replace(spec, scoop=ScoopConfig(**fast)))
            for label, spec in trials
        ]
        campaign = Campaign.from_specs("node_churn_fast", shrunk)
        serial = run_campaign(campaign, jobs=1, cache=ResultCache(tmp_path / "a"))
        parallel = run_campaign(campaign, jobs=4, cache=ResultCache(tmp_path / "b"))
        assert serial.executed == parallel.executed == len(trials)
        churn_seen = False
        for s, p in zip(serial.trials, parallel.trials):
            assert s.result.deterministic_dict() == p.result.deterministic_dict()
            if s.trial.spec.churn_rate > 0:
                churn_seen = True
                assert s.result.metrics.survival["nodes_failed"] > 0
        assert churn_seen

    def test_plugin_policy_parallel_matches_serial(self, tmp_path):
        # A plug-in registered from a module-level factory must run under
        # a process pool too (workers re-register it via the initializer).
        register_policy("scoop-plugin", policy_factory("scoop"))
        try:
            assert "scoop-plugin" in plugin_policies()
            assert "scoop" not in plugin_policies()
            specs = [small_spec(policy="scoop-plugin", seed=s) for s in (1, 2)]
            campaign = Campaign.from_specs("plugin", specs)
            serial = run_campaign(campaign, jobs=1, cache=ResultCache(tmp_path / "s"))
            par = run_campaign(campaign, jobs=2, cache=ResultCache(tmp_path / "p"))
            assert [r.deterministic_dict() for r in serial.results] == [
                r.deterministic_dict() for r in par.results
            ]
        finally:
            unregister_policy("scoop-plugin")

    def test_refresh_and_no_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        campaign = Campaign.from_specs("one", [small_spec()])
        first = run_campaign(campaign, cache=cache)
        assert first.executed == 1
        refreshed = run_campaign(campaign, cache=cache, refresh=True)
        assert refreshed.executed == 1
        assert (
            refreshed.results[0].deterministic_dict()
            == first.results[0].deterministic_dict()
        )
        before = cache.disk_entries()
        uncached = run_campaign(campaign, use_cache=False)
        assert uncached.executed == 1
        assert cache.disk_entries() == before


class TestCLI:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "fig3_middle" in out

    def test_run_smoke_then_replay_from_cache(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert cli.main(["run", "smoke", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "3 executed, 0 cache hits" in out
        assert cli.main(["run", "smoke", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "0 executed, 3 cache hits" in out

    def test_run_unknown_scenario(self, capsys):
        assert cli.main(["run", "nope"]) == 2

    def test_clear_cache(self, tmp_path, capsys):
        ResultCache(tmp_path).put("k", fake_result(small_spec()))
        assert cli.main(["clear-cache", "--cache-dir", str(tmp_path)]) == 0
        assert ResultCache(tmp_path).disk_entries() == 0
