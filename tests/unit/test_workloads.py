"""Unit tests for the five data sources and the query generator."""

import random

import pytest

from repro.core.config import ValueDomain
from repro.workloads import make_workload
from repro.workloads.base import CallableWorkload
from repro.workloads.queries import QueryGenerator, QueryPlanConfig
from repro.workloads.real_trace import CorrelatedLightWorkload
from repro.workloads.synthetic import (
    EqualWorkload,
    GaussianWorkload,
    RandomWorkload,
    UniqueWorkload,
)

DOMAIN = ValueDomain(0, 100)


class TestSynthetic:
    def test_unique_returns_node_id(self):
        wl = UniqueWorkload(DOMAIN, 10)
        for node in range(10):
            assert wl.sample(node, 0.0) == node

    def test_unique_clamps_to_domain(self):
        wl = UniqueWorkload(ValueDomain(0, 5), 10)
        assert wl.sample(9, 0.0) == 5

    def test_equal_constant(self):
        wl = EqualWorkload(DOMAIN, 10)
        values = {wl.sample(n, t) for n in range(10) for t in (0.0, 50.0)}
        assert len(values) == 1

    def test_equal_custom_value(self):
        assert EqualWorkload(DOMAIN, 5, value=42).sample(3, 1.0) == 42

    def test_random_in_domain(self):
        wl = RandomWorkload(DOMAIN, 10, seed=3)
        for k in range(50):
            assert wl.sample(k % 10, float(k)) in DOMAIN

    def test_random_deterministic_replay(self):
        a = RandomWorkload(DOMAIN, 10, seed=3)
        b = RandomWorkload(DOMAIN, 10, seed=3)
        times = [float(t) for t in range(20)]
        assert a.expected_values(4, times) == b.expected_values(4, times)

    def test_random_varies(self):
        wl = RandomWorkload(DOMAIN, 10, seed=3)
        values = {wl.sample(1, float(t)) for t in range(30)}
        assert len(values) > 10

    def test_gaussian_clusters_around_mean(self):
        wl = GaussianWorkload(DOMAIN, 10, seed=5)
        mean = wl.mean_of(4)
        values = [wl.sample(4, float(t)) for t in range(100)]
        observed = sum(values) / len(values)
        assert abs(observed - mean) < 5.0

    def test_gaussian_variance_is_papers(self):
        wl = GaussianWorkload(DOMAIN, 5, seed=6)
        values = [wl.sample(2, float(t)) for t in range(500)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert 4.0 < var < 25.0  # paper: variance 10 (clamping skews a bit)

    def test_gaussian_means_differ_between_nodes(self):
        wl = GaussianWorkload(DOMAIN, 30, seed=7)
        means = {round(wl.mean_of(n)) for n in range(30)}
        assert len(means) > 15


class TestRealTrace:
    def test_temporal_correlation(self):
        wl = CorrelatedLightWorkload(DOMAIN, 10, seed=1)
        deltas = [
            abs(wl.sample(3, t + 15.0) - wl.sample(3, t)) for t in range(0, 600, 15)
        ]
        assert sum(deltas) / len(deltas) < 10.0

    def test_spatial_offsets_differ(self):
        wl = CorrelatedLightWorkload(DOMAIN, 20, seed=1)
        snapshots = [wl.sample(n, 100.0) for n in range(20)]
        assert len(set(snapshots)) > 5

    def test_positions_drive_offsets(self):
        positions = [(float(i), 0.0) for i in range(10)]
        wl = CorrelatedLightWorkload(DOMAIN, 10, seed=1, positions=positions)
        left = wl.sample(0, 100.0)
        right = wl.sample(9, 100.0)
        assert abs(right - left) > 10  # gradient across the floor

    def test_nearby_nodes_similar(self):
        positions = [(0.0, 0.0), (1.0, 0.0), (200.0, 0.0)]
        wl = CorrelatedLightWorkload(DOMAIN, 3, seed=2, positions=positions)
        near = abs(wl.sample(0, 50.0) - wl.sample(1, 50.0))
        far = abs(wl.sample(0, 50.0) - wl.sample(2, 50.0))
        assert near < far

    def test_in_domain(self):
        wl = CorrelatedLightWorkload(DOMAIN, 5, seed=3)
        for t in range(0, 3000, 100):
            assert wl.sample(2, float(t)) in DOMAIN


class TestFactory:
    def test_all_names(self):
        for name in ("unique", "equal", "random", "gaussian", "real"):
            wl = make_workload(name, DOMAIN, 10, seed=1)
            assert wl.name in (name,)
            assert wl.sample(1, 0.0) in DOMAIN

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_workload("nope", DOMAIN, 10)

    def test_callable_wrapper(self):
        wl = CallableWorkload(lambda n, t: n * 10, DOMAIN, 5, name="tens")
        assert wl.sample(3, 0.0) == 30
        assert wl.sample(99, 0.0) == 100  # clamped


class TestQueryGenerator:
    def _generator(self, plan, seed=1):
        return QueryGenerator(plan, DOMAIN, list(range(1, 21)), random.Random(seed))

    def test_value_query_width(self):
        plan = QueryPlanConfig(kind="value", width_frac=(0.05, 0.05))
        gen = self._generator(plan)
        for _ in range(20):
            lo, hi = gen.value_range()
            assert hi - lo + 1 == round(0.05 * DOMAIN.size)
            assert lo >= DOMAIN.lo and hi <= DOMAIN.hi

    def test_node_query_fraction(self):
        plan = QueryPlanConfig(kind="nodes", node_frac=0.25)
        gen = self._generator(plan)
        nodes = gen.node_set()
        assert len(nodes) == 5
        assert all(1 <= n <= 20 for n in nodes)

    def test_next_query_time_window(self):
        plan = QueryPlanConfig(kind="value", time_window=100.0)
        gen = self._generator(plan)
        query = gen.next_query(now=500.0)
        assert query.time_range == (400.0, 500.0)

    def test_node_query_has_no_value_range(self):
        plan = QueryPlanConfig(kind="nodes")
        query = self._generator(plan).next_query(now=10.0)
        assert query.value_range is None
        assert query.node_list is not None

    def test_invalid_plan_rejected(self):
        with pytest.raises(ValueError):
            QueryPlanConfig(kind="bogus")
        with pytest.raises(ValueError):
            QueryPlanConfig(node_frac=0.0)

    def test_popularity_bias_uses_hint(self):
        plan = QueryPlanConfig(
            kind="value", width_frac=(0.03, 0.03), popularity_bias=1.0
        )
        gen = QueryGenerator(
            plan, DOMAIN, [1], random.Random(2), recent_value_hint=lambda: 50
        )
        centers = []
        for _ in range(10):
            lo, hi = gen.value_range()
            centers.append((lo + hi) / 2)
        assert all(abs(c - 50) <= 3 for c in centers)
