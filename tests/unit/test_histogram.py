"""Unit tests for summary histograms and the P(p -> v) estimator."""

import pytest

from repro.core.histogram import Histogram


class TestConstruction:
    def test_paper_example(self):
        # Paper Section 5.2: min=1, max=100, nBins=10, 8 readings between
        # 50 and 60 -> 6th bin (n=5) holds 8.
        values = [55] * 8 + [1, 100]
        hist = Histogram.from_values(values, n_bins=10)
        assert hist.min_value == 1
        assert hist.max_value == 100
        assert hist.bins[5] == 8

    def test_bin_width_formula(self):
        hist = Histogram.from_values([0, 99], n_bins=10)
        assert hist.bin_width == pytest.approx(10.0)

    def test_all_values_counted(self):
        values = list(range(30))
        hist = Histogram.from_values(values, n_bins=7)
        assert hist.total == 30

    def test_single_value(self):
        hist = Histogram.from_values([42] * 5, n_bins=10)
        assert hist.min_value == hist.max_value == 42
        assert hist.total == 5
        assert hist.probability(42) > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Histogram.from_values([], n_bins=10)

    def test_invalid_bins_rejected(self):
        with pytest.raises(ValueError):
            Histogram.from_values([1, 2], n_bins=0)
        with pytest.raises(ValueError):
            Histogram(min_value=5, max_value=1, bins=(1,))
        with pytest.raises(ValueError):
            Histogram(min_value=1, max_value=5, bins=(-1, 2))

    def test_max_value_lands_in_last_bin(self):
        hist = Histogram.from_values([0, 100], n_bins=10)
        assert hist.bin_of(100) == 9


class TestProbability:
    def test_outside_range_is_zero(self):
        hist = Histogram.from_values([10, 20, 30], n_bins=5)
        assert hist.probability(5) == 0.0
        assert hist.probability(35) == 0.0

    def test_follows_paper_pseudocode(self):
        values = [10] * 6 + [19] * 3 + [28]
        hist = Histogram.from_values(values, n_bins=4)
        # manual: min=10 max=28 width=(28-10+1)/4=4.75
        v = 11
        bin_index = int((v - 10) / 4.75)
        expected = (hist.bins[bin_index] / 10) * (1 / 4.75)
        assert hist.probability(v) == pytest.approx(expected)

    def test_sums_to_one_over_integer_domain(self):
        values = [3, 7, 7, 12, 18, 18, 18, 25]
        hist = Histogram.from_values(values, n_bins=5)
        total = sum(hist.probability(v) for v in range(0, 60))
        # Equal-width bins over integers only approximately normalise; the
        # paper's estimator has the same property.
        assert total == pytest.approx(1.0, rel=0.3)

    def test_heavier_bin_more_likely(self):
        values = [10] * 9 + [50]
        hist = Histogram.from_values(values, n_bins=4)
        assert hist.probability(10) > hist.probability(50)

    def test_probability_vector_matches_scalar(self):
        values = [5, 6, 7, 20, 21, 40]
        hist = Histogram.from_values(values, n_bins=6)
        vec = hist.probability_vector(0, 50)
        for v in range(0, 51):
            assert vec[v] == pytest.approx(hist.probability(v))

    def test_vector_outside_overlap_is_zero(self):
        hist = Histogram.from_values([10, 20], n_bins=2)
        vec = hist.probability_vector(30, 40)
        assert vec.sum() == 0.0

    def test_wire_size_fits_one_packet(self):
        hist = Histogram.from_values(list(range(30)), n_bins=10)
        assert hist.wire_bytes() <= 14
