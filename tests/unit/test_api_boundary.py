"""Enforce the serving API boundary mechanically — via the BND01 rule.

The boundary spec (public names, public submodules, forbidden internal
types) lives in exactly one place now:
:data:`repro.analysis.boundary.SERVICE_BOUNDARY`, enforced by
:class:`~repro.analysis.boundary.ImportBoundaryRule` both here and in
the CI ``analysis`` job. This test asserts the rule reports zero
findings on the tree, proves a synthetic violation *is* caught (so the
delegation can never rot into a vacuous pass), and guards that the scan
actually covers the known importers.
"""

import textwrap
from pathlib import Path

from repro.analysis import (
    SERVICE_BOUNDARY,
    ImportBoundaryRule,
    iter_python_files,
    run_analysis,
)

REPO = Path(__file__).resolve().parents[2]

#: Directories scanned for boundary violations (tests are exempt: they
#: white-box the internals on purpose). Mirrors the CLI's default scan.
SCAN_ROOTS = ("src/repro", "examples", "benchmarks", ".github/scripts")


def scan_paths():
    return [REPO / root for root in SCAN_ROOTS if (REPO / root).exists()]


def test_service_boundary_clean_on_head():
    findings = run_analysis(
        scan_paths(), rules=[ImportBoundaryRule(SERVICE_BOUNDARY)], root=REPO
    )
    assert not findings, (
        "internal service types leaked across the API boundary:\n  "
        + "\n  ".join(f"{f.location}: {f.message}" for f in findings)
    )


def test_synthetic_violations_are_caught(tmp_path):
    """Negative case: every class of violation the old ad-hoc walk caught
    must still be caught by the rule it delegated to."""
    offender = tmp_path / "offender.py"
    offender.write_text(
        textwrap.dedent(
            """
            import repro.service.gateway
            from repro.service.gateway import TenantService
            from repro.service import ScoopClient, AnswerCache
            from repro.service.api import *

            def peek(gw):
                return gw.ServiceTicket
            """
        )
    )
    findings = run_analysis(
        [tmp_path], rules=[ImportBoundaryRule(SERVICE_BOUNDARY)], root=tmp_path
    )
    messages = "\n".join(f.message for f in findings)
    assert all(f.rule == "BND01" for f in findings)
    assert "whole-module import" in messages
    assert "internal module" in messages
    assert "'AnswerCache' is not part of the public" in messages
    assert "star import" in messages
    assert "'ServiceTicket' reached via attribute access" in messages
    # line-accurate: the ticket peek is attributed to its own line.
    assert any(f.line == 8 for f in findings if "ServiceTicket" in f.message)


def test_rule_exempts_the_package_itself():
    rule = ImportBoundaryRule(SERVICE_BOUNDARY)
    assert not rule.applies_to("src/repro/service/gateway.py")
    assert not rule.applies_to("src/repro/service")
    assert rule.applies_to("src/repro/experiments/runner.py")
    assert rule.applies_to("benchmarks/bench_query_service.py")


def test_scan_actually_covers_the_tree():
    """Guard the guard: the scan must see the known importers — if the
    directory layout changes and the walk silently misses them, this
    fails before the boundary test rots into a vacuous pass."""
    rule = ImportBoundaryRule(SERVICE_BOUNDARY)
    files = {
        p.resolve().relative_to(REPO).as_posix()
        for p in iter_python_files(scan_paths())
    }
    covered = {f for f in files if rule.applies_to(f)}
    assert "src/repro/experiments/runner.py" in covered
    assert "src/repro/experiments/__main__.py" in covered
    assert any(f.startswith("examples/") for f in covered)
    assert any(f.startswith("benchmarks/") for f in covered)
    assert any(f.startswith(".github/scripts/") for f in covered)
    assert not any(f.startswith("src/repro/service/") for f in covered)
