"""Enforce the serving API boundary mechanically.

``repro.service`` exposes exactly one request/response vocabulary —
the frozen dataclasses and typed exceptions of ``repro.service.api``
plus the supported entry points (clients, servers, gateways, load
drivers, Deployment). Internal plumbing — ``ServiceTicket``,
``TenantService``, ``AnswerCache``, the frame structs — must never be
imported from outside the package. This test walks every Python file
outside ``src/repro/service`` (library, examples, benchmarks, CI
scripts) with ``ast`` and fails on any import that crosses the line,
so a convenience leak shows up in review as a red test, not a code
smell.
"""

import ast
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

#: Directories scanned for boundary violations (tests are exempt: they
#: white-box the internals on purpose).
SCAN_ROOTS = ("src/repro", "examples", "benchmarks", ".github/scripts")

#: The public surface: the only names importable from ``repro.service``
#: (or its submodules) by outside code.
PUBLIC_NAMES = {
    # typed API (repro.service.api)
    "PROTOCOL_VERSION",
    "QueryRequest",
    "QueryAnswer",
    "ServiceError",
    "ServiceStats",
    "ServiceFault",
    "ShedError",
    "MalformedRequestError",
    "ProtocolVersionError",
    "ProtocolError",
    "ServiceUnavailableError",
    "aggregate_shard_stats",
    # entry points
    "ScoopClient",
    "AsyncScoopClient",
    "ScoopServer",
    "serve_framed",
    "QueryGateway",
    "ShardedGateway",
    "serve_gateway",
    "ServiceLimits",
    "Deployment",
    # load drivers
    "build_arrivals",
    "drive_load",
    "drive_socket_load",
    "build_client_program",
    "answers_digest",
}

#: Submodules outside code may import *from* (beyond the package root).
#: protocol/gateway/shard internals stay inside the package.
PUBLIC_SUBMODULES = {
    "repro.service",
    "repro.service.api",
    "repro.service.client",
    "repro.service.deployment",
    "repro.service.loadtest",
    "repro.service.server",
    "repro.service.shard",
}


def outside_files():
    service_dir = REPO / "src" / "repro" / "service"
    for root in SCAN_ROOTS:
        base = REPO / root
        if not base.exists():
            continue
        for path in sorted(base.rglob("*.py")):
            if service_dir in path.parents:
                continue
            if "__pycache__" in path.parts:
                continue
            yield path


def service_imports(tree):
    """Yield ``(module, name, lineno)`` for every import touching
    repro.service. ``name`` is ``*`` for whole-module imports."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro.service"):
                    yield alias.name, "*", node.lineno
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.startswith("repro.service"):
                for alias in node.names:
                    yield module, alias.name, node.lineno


def test_only_public_names_cross_the_service_boundary():
    violations = []
    for path in outside_files():
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for module, name, lineno in service_imports(tree):
            where = f"{path.relative_to(REPO)}:{lineno}"
            if module not in PUBLIC_SUBMODULES:
                violations.append(
                    f"{where}: import from internal module {module!r}"
                )
            elif name == "*":
                # `import repro.service.x` / star imports: attribute access
                # is unchecked, so refuse the pattern outright.
                violations.append(
                    f"{where}: whole-module import of {module!r}; "
                    f"import the public names instead"
                )
            elif name not in PUBLIC_NAMES:
                violations.append(
                    f"{where}: {name!r} is not part of the public "
                    f"service API"
                )
    assert not violations, (
        "internal service types leaked across the API boundary:\n  "
        + "\n  ".join(violations)
    )


def test_internal_types_never_named_outside_the_package():
    """Belt and braces for the import scan: the internal type names must
    not appear at all in outside library/example/benchmark/CI code —
    not even via attribute access (``gateway.ServiceTicket``)."""
    forbidden = ("ServiceTicket", "TenantService", "AnswerCache")
    violations = []
    for path in outside_files():
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and node.id in forbidden:
                violations.append(
                    f"{path.relative_to(REPO)}:{node.lineno}: {node.id}"
                )
            elif isinstance(node, ast.Attribute) and node.attr in forbidden:
                violations.append(
                    f"{path.relative_to(REPO)}:{node.lineno}: .{node.attr}"
                )
    assert not violations, (
        "internal service types referenced outside repro.service:\n  "
        + "\n  ".join(violations)
    )


def test_scan_actually_covers_the_tree():
    """Guard the guard: the scan must see the known importers — if the
    directory layout changes and the walk silently misses them, this
    fails before the boundary tests rot into vacuous passes."""
    files = {str(p.relative_to(REPO)) for p in outside_files()}
    assert "src/repro/experiments/runner.py" in files
    assert "src/repro/experiments/__main__.py" in files
    assert any(f.startswith("examples/") for f in files)
    assert any(f.startswith("benchmarks/") for f in files)
    assert any(f.startswith(".github/scripts/") for f in files)
    assert not any(f.startswith("src/repro/service/") for f in files)
