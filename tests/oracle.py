"""Ground-truth query oracle harness for the test suite.

Replays every reading a finished trial produced (the
:class:`~repro.sim.metrics.DeliveryTracker` record — built *outside* the
simulator's delivery pipeline) and computes the exact answer set for any
(attribute, time-range, value-range/node-list) query. Tests then assert
two things instead of hand-written per-test expectations:

* every reading a policy returned is in the oracle's produced set
  (**no false positives, ever** — a violation means the pipeline
  corrupted or mis-indexed data);
* the returned fraction of the *reachable* ground truth (**recall**) is
  at or above the scenario's floor.

Built on :mod:`repro.experiments.oracle`, the same scorer that stamps
``TrialMetrics.oracle`` onto every campaign export.
"""

from typing import Iterable, List, Set

from repro.core.config import ScoopConfig
from repro.core.query import QueryResult
from repro.experiments.oracle import (
    ReadingKey,
    _bucket_by_attr,
    produced_answer,
    reachable_answer,
    score_trial,
)
from repro.sim.metrics import DeliveryTracker


class QueryOracle:
    """Exact-answer oracle for one finished trial."""

    def __init__(self, tracker: DeliveryTracker, config: ScoopConfig):
        self.tracker = tracker
        self.config = config
        _bucket_by_attr(tracker)

    # -- exact answers ---------------------------------------------------
    def produced(self, query) -> Set[ReadingKey]:
        """Every produced reading matching ``query`` (the precision
        reference)."""
        return produced_answer(self.tracker, query)

    def reachable(self, query) -> Set[ReadingKey]:
        """Matching readings a perfect executor could have fetched when
        the query went out (the recall denominator): stored somewhere by
        issue time, on a node alive then."""
        issued = query.time_range[1]
        return reachable_answer(
            self.tracker, query, stored_by=issued, at_time=issued
        )

    # -- assertions ------------------------------------------------------
    def assert_subset(self, result: QueryResult) -> None:
        """The policy's answer must be contained in the oracle's produced
        set — nothing fabricated, nothing from the wrong attribute."""
        returned = {(v, t, p) for v, t, p in result.readings}
        extras = returned - self.produced(result.query)
        assert not extras, (
            f"query {result.query.query_id} (attr {result.query.attr}) "
            f"returned {len(extras)} readings the oracle never produced: "
            f"{sorted(extras)[:5]}"
        )

    def recall(self, result: QueryResult) -> float:
        """Returned fraction of the reachable ground truth (1.0 when the
        oracle set is empty — there was nothing to miss)."""
        expected = self.reachable(result.query)
        if not expected:
            return 1.0
        returned = {(v, t, p) for v, t, p in result.readings}
        return len(returned & expected) / len(expected)

    def check_results(
        self, results: Iterable[QueryResult], min_mean_recall: float = 0.0
    ) -> List[float]:
        """Subset-check every closed result; return their recalls and
        assert the mean is at or above ``min_mean_recall``."""
        recalls: List[float] = []
        for result in results:
            if not result.closed:
                continue
            self.assert_subset(result)
            recalls.append(self.recall(result))
        if recalls and min_mean_recall > 0.0:
            mean = sum(recalls) / len(recalls)
            assert mean >= min_mean_recall, (
                f"mean oracle recall {mean:.2f} below floor "
                f"{min_mean_recall:.2f} over {len(recalls)} queries"
            )
        return recalls

    def scorecard(self, query_log: Iterable[QueryResult]):
        """The trial-wide (oracle, per-attribute) scorecard, exactly as a
        campaign export would carry it."""
        return score_trial(list(query_log), self.tracker, self.config)
