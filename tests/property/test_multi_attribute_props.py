"""Property-based tests (hypothesis) for the multi-attribute schema.

Strategies generate whole multi-attribute :class:`ExperimentSpec`\\ s —
random attribute registries (names, domain shapes, k ∈ 1..4) — and
assert the invariants the E15 pipeline rests on: serialization
round-trips exactly, cache keys are deterministic and injective in the
registry, shared-epoch chunking is lossless for any owner layout, owner
lookup never crosses attributes, and the query generator only emits
in-domain queries for whatever registry it is handed.
"""

import dataclasses
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AttributeSpec, ScoopConfig, ValueDomain
from repro.experiments.runner import ExperimentSpec, spec_key
from repro.workloads.queries import QueryGenerator, QueryPlanConfig

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
ATTR_NAMES = ("temperature", "light", "humidity", "voltage")


def domains(min_size=2, max_size=60):
    """Arbitrary small integer domains (offset lo exercised too)."""
    return st.tuples(
        st.integers(0, 10), st.integers(min_size - 1, max_size - 1)
    ).map(lambda t: ValueDomain(t[0], t[0] + t[1]))


@st.composite
def attribute_registries(draw, max_k=4):
    k = draw(st.integers(1, max_k))
    return tuple(
        AttributeSpec(ATTR_NAMES[i], draw(domains())) for i in range(k)
    )


@st.composite
def multi_attribute_specs(draw):
    attrs = draw(attribute_registries())
    scoop = ScoopConfig(
        n_nodes=draw(st.integers(4, 20)),
        domain=attrs[0].domain,
        attributes=attrs,
        sample_interval=draw(st.sampled_from((5.0, 15.0))),
    )
    plan = QueryPlanConfig(n_attributes=draw(st.integers(1, len(attrs))))
    return ExperimentSpec(
        policy=draw(st.sampled_from(("scoop", "local", "hash"))),
        workload=draw(st.sampled_from(("gaussian", "random", "unique"))),
        scoop=scoop,
        query_plan=plan,
        seed=draw(st.integers(0, 99)),
        hash_simulated=draw(st.booleans()),
    )


# ----------------------------------------------------------------------
# Spec schema properties
# ----------------------------------------------------------------------
@given(spec=multi_attribute_specs())
@settings(max_examples=60)
def test_spec_serialization_round_trips_exactly(spec):
    rebuilt = ExperimentSpec.from_dict(spec.to_dict())
    assert rebuilt == spec
    assert rebuilt.scoop.attributes == spec.scoop.attributes
    assert rebuilt.to_dict() == spec.to_dict()


@given(spec=multi_attribute_specs())
@settings(max_examples=60)
def test_spec_key_deterministic_and_registry_sensitive(spec):
    assert spec_key(spec) == spec_key(ExperimentSpec.from_dict(spec.to_dict()))
    if spec.scoop.n_attributes > 1:
        # dropping an attribute must change the trial's identity
        shrunk_cfg = dataclasses.replace(
            spec.scoop, attributes=spec.scoop.attributes[:-1]
        )
        shrunk_plan = QueryPlanConfig(
            n_attributes=min(
                spec.query_plan.n_attributes, shrunk_cfg.n_attributes
            )
        )
        shrunk = dataclasses.replace(
            spec, scoop=shrunk_cfg, query_plan=shrunk_plan
        )
        assert spec_key(shrunk) != spec_key(spec)


@given(spec=multi_attribute_specs())
@settings(max_examples=60)
def test_registry_views_consistent(spec):
    config = spec.scoop
    assert config.n_attributes == len(config.attribute_specs)
    for attr in config.attribute_ids:
        assert config.domain_of(attr) == config.attribute_specs[attr].domain
        assert config.attribute_id(config.attribute_specs[attr].name) == attr


# ----------------------------------------------------------------------
# Shared-epoch chunking over arbitrary owner layouts
# ----------------------------------------------------------------------
@given(data=st.data(), registry=attribute_registries(max_k=3))
@settings(max_examples=40)
def test_epoch_chunking_round_trips_any_owner_layout(data, registry):
    from repro.core.storage_index import (
        StorageIndex,
        chunk_index_set,
        indexes_from_chunks,
    )

    indexes = {}
    for attr, spec in enumerate(registry):
        owners = data.draw(
            st.lists(
                st.integers(0, 12),
                min_size=spec.domain.size,
                max_size=spec.domain.size,
            )
        )
        indexes[attr] = StorageIndex.single_owner(
            sid=attr + 1, domain=spec.domain, owner_by_value=owners, attr=attr
        )
    epoch = data.draw(st.integers(len(registry) + 1, 500))
    chunks = chunk_index_set(epoch, indexes)
    domains_map = {a: s.domain for a, s in enumerate(registry)}
    rebuilt = indexes_from_chunks(domains_map, chunks)
    assert rebuilt == indexes
    for attr, index in rebuilt.items():
        assert index.sid == indexes[attr].sid
        assert index.attr == attr


@given(data=st.data(), registry=attribute_registries(max_k=3))
@settings(max_examples=40)
def test_owner_lookup_never_crosses_attributes(data, registry):
    """An index only answers for its own domain: a value outside it (as
    happens when the wrong attribute's index is consulted) raises rather
    than silently returning some owner."""
    import pytest

    from repro.core.storage_index import StorageIndex

    indexes = {}
    for attr, spec in enumerate(registry):
        owner = data.draw(st.integers(1, 12))
        indexes[attr] = StorageIndex.uniform(1, spec.domain, owner, attr=attr)
    for attr, index in indexes.items():
        for v in (index.domain.lo, index.domain.hi):
            assert index.owners_of(v)
        for probe in (index.domain.lo - 1, index.domain.hi + 1):
            with pytest.raises(ValueError):
                index.owners_of(probe)


# ----------------------------------------------------------------------
# Query generation stays inside each attribute's domain
# ----------------------------------------------------------------------
@given(
    registry=attribute_registries(),
    seed=st.integers(0, 999),
    n_queries=st.integers(1, 30),
)
@settings(max_examples=60)
def test_generated_queries_always_in_their_attributes_domain(
    registry, seed, n_queries
):
    plan = QueryPlanConfig(n_attributes=len(registry))
    generator = QueryGenerator(
        plan,
        registry[0].domain,
        sensor_ids=[1, 2, 3],
        rng=random.Random(seed),
        attribute_domains=[spec.domain for spec in registry],
    )
    for position in range(n_queries):
        query = generator.next_query(now=1000.0 + position)
        assert query.attr == position % len(registry)
        lo, hi = query.value_range
        domain = registry[query.attr].domain
        assert lo in domain and hi in domain
