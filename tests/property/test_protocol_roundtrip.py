"""Property tests for the framing layer.

Two invariants the serving stack leans on:

1. **Round trip** — any frame of any type, with any JSON-object payload
   and any seq, survives encode → decode unchanged, however the bytes
   are chunked on the way in.
2. **No crashes** — arbitrary garbage, truncations, and single-byte
   corruptions of valid streams either decode cleanly or raise
   :class:`ProtocolError`. Nothing else escapes the decoder.
"""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.api import PROTOCOL_VERSION, ProtocolError
from repro.service.protocol import (
    MAX_FRAME_SIZE,
    FrameDecoder,
    FrameType,
    decode_frames,
    encode_frame,
)

# JSON-object payloads: keep scalars wire-safe (ints within I64, text
# without surrogates) — the protocol is JSON-over-frames, not pickle.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)
_payloads = st.dictionaries(
    st.text(max_size=20),
    st.one_of(_scalars, st.lists(_scalars, max_size=8)),
    max_size=8,
)
_frame_types = st.sampled_from(list(FrameType))
_seqs = st.integers(min_value=0, max_value=2**32 - 1)


def chunked(data: bytes, cuts) -> list:
    """Split ``data`` at the given cut points (any order, dupes fine)."""
    points = sorted({min(c, len(data)) for c in cuts})
    out, prev = [], 0
    for p in points + [len(data)]:
        out.append(data[prev:p])
        prev = p
    return out


class TestRoundTrip:
    @given(ftype=_frame_types, payload=_payloads, seq=_seqs)
    def test_every_frame_type_round_trips(self, ftype, payload, seq):
        frames = decode_frames(encode_frame(ftype, payload, seq=seq))
        assert len(frames) == 1
        frame = frames[0]
        assert frame.type == ftype
        assert frame.seq == seq
        assert frame.version == PROTOCOL_VERSION
        assert frame.payload == payload

    @given(
        items=st.lists(
            st.tuples(_frame_types, _payloads, _seqs), min_size=1, max_size=6
        ),
        cuts=st.lists(st.integers(min_value=0, max_value=500), max_size=12),
    )
    def test_chunking_is_invisible(self, items, cuts):
        """Feeding the same bytes in any chunking yields the same frames
        — partial writes interleaved across frames included."""
        blob = b"".join(
            encode_frame(t, p, seq=s) for t, p, s in items
        )
        decoder = FrameDecoder()
        frames = []
        for chunk in chunked(blob, cuts):
            frames.extend(decoder.feed(chunk))
        assert decoder.buffered == 0
        assert [(f.type, f.payload, f.seq) for f in frames] == items


class TestNeverCrashes:
    @settings(max_examples=200)
    @given(garbage=st.binary(max_size=200))
    def test_arbitrary_bytes(self, garbage):
        decoder = FrameDecoder()
        try:
            decoder.feed(garbage)
        except ProtocolError:
            pass  # the one sanctioned failure mode

    @settings(max_examples=200)
    @given(
        ftype=_frame_types,
        payload=_payloads,
        seq=_seqs,
        position=st.integers(min_value=0, max_value=10_000),
        flip=st.integers(min_value=1, max_value=255),
    )
    def test_single_byte_corruption(self, ftype, payload, seq, position, flip):
        """XOR one byte anywhere in a valid frame: the decoder either
        still yields a frame (payload bytes may legally change under the
        flip) or raises ProtocolError — never anything else, and never a
        frame plus leftover confusion that crashes a later feed."""
        data = bytearray(encode_frame(ftype, payload, seq=seq))
        i = position % len(data)
        data[i] ^= flip
        decoder = FrameDecoder()
        try:
            decoder.feed(bytes(data))
            # Whatever happened, a subsequent valid frame must either
            # parse or raise ProtocolError (e.g. poisoned decoder, or the
            # corrupt length prefix swallowed it as payload bytes).
            decoder.feed(encode_frame(FrameType.PING))
        except ProtocolError:
            pass

    @given(
        ftype=_frame_types,
        payload=_payloads,
        keep=st.integers(min_value=0, max_value=10_000),
    )
    def test_truncation_never_yields_a_frame(self, ftype, payload, keep):
        """A strict prefix of one frame never decodes to a frame: the
        decoder waits (no error) because the length prefix promises more."""
        data = encode_frame(ftype, payload)
        prefix = data[: keep % len(data)]  # always a strict prefix
        decoder = FrameDecoder()
        assert decoder.feed(prefix) == []
        assert decoder.buffered == len(prefix)

    @given(length=st.integers(min_value=MAX_FRAME_SIZE + 1, max_value=2**32 - 1))
    def test_oversize_length_prefix_always_rejected(self, length):
        decoder = FrameDecoder()
        try:
            decoder.feed(struct.pack(">I", length))
            raise AssertionError("oversize length prefix must not be accepted")
        except ProtocolError:
            pass
