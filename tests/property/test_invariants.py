"""Property-based tests (hypothesis) on the core data structures.

Each property is an invariant DESIGN.md commits to: histogram probabilities
behave like the paper's estimator, index compaction/chunking round-trips
exactly, the kernel orders events correctly, and the indexing algorithm's
choice is never worse than any single-owner alternative beyond the
configured tie tolerance.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ScoopConfig, ValueDomain
from repro.core.histogram import Histogram
from repro.core.storage_index import StorageIndex
from repro.sim.kernel import Simulator


# ----------------------------------------------------------------------
# Histogram properties
# ----------------------------------------------------------------------
values_strategy = st.lists(st.integers(0, 200), min_size=1, max_size=60)


@given(values=values_strategy, n_bins=st.integers(1, 16))
def test_histogram_total_equals_sample_count(values, n_bins):
    hist = Histogram.from_values(values, n_bins)
    assert hist.total == len(values)


@given(values=values_strategy, n_bins=st.integers(1, 16))
def test_histogram_probabilities_nonnegative_and_bounded(values, n_bins):
    hist = Histogram.from_values(values, n_bins)
    for v in range(min(values) - 2, max(values) + 3):
        p = hist.probability(v)
        assert 0.0 <= p <= 1.0


@given(values=values_strategy, n_bins=st.integers(1, 16))
def test_histogram_zero_outside_observed_range(values, n_bins):
    hist = Histogram.from_values(values, n_bins)
    assert hist.probability(min(values) - 1) == 0.0
    assert hist.probability(max(values) + 1) == 0.0


@given(values=values_strategy, n_bins=st.integers(1, 16))
def test_histogram_mass_sums_near_one(values, n_bins):
    """Σ_v P(v) over the observed range ≈ 1 (the estimator's intent)."""
    hist = Histogram.from_values(values, n_bins)
    total = sum(
        hist.probability(v) for v in range(min(values), max(values) + 1)
    )
    # bin_width rounding makes this approximate, but never wildly off
    assert 0.5 <= total <= 1.5


@given(values=values_strategy, n_bins=st.integers(1, 16))
def test_histogram_vector_consistent_with_scalar(values, n_bins):
    hist = Histogram.from_values(values, n_bins)
    lo, hi = min(values) - 3, max(values) + 3
    vec = hist.probability_vector(lo, hi)
    for v in range(lo, hi + 1):
        assert math.isclose(vec[v - lo], hist.probability(v), abs_tol=1e-12)


@given(values=values_strategy, n_bins=st.integers(1, 16))
def test_observed_values_have_positive_probability(values, n_bins):
    hist = Histogram.from_values(values, n_bins)
    for v in set(values):
        assert hist.probability(v) > 0.0


# ----------------------------------------------------------------------
# Storage index properties
# ----------------------------------------------------------------------
def owners_strategy(size):
    return st.lists(st.integers(0, 30), min_size=size, max_size=size)


@given(data=st.data(), domain_size=st.integers(1, 80))
def test_compaction_preserves_lookup(data, domain_size):
    domain = ValueDomain(0, domain_size - 1)
    owners = data.draw(owners_strategy(domain_size))
    index = StorageIndex.single_owner(1, domain, owners)
    entries = index.compact()
    # ranges tile the domain exactly, in order, without overlap
    assert entries[0].lo == domain.lo
    assert entries[-1].hi == domain.hi
    for a, b in zip(entries, entries[1:]):
        assert b.lo == a.hi + 1
    # every value's owner is preserved
    for entry in entries:
        for v in range(entry.lo, entry.hi + 1):
            assert index.owner_of(v) == entry.owners[0]


@given(
    data=st.data(),
    domain_size=st.integers(1, 80),
    max_entries=st.integers(1, 7),
)
def test_chunking_roundtrip_exact(data, domain_size, max_entries):
    domain = ValueDomain(0, domain_size - 1)
    owners = data.draw(owners_strategy(domain_size))
    index = StorageIndex.single_owner(3, domain, owners)
    rebuilt = StorageIndex.from_chunks(domain, index.to_chunks(max_entries))
    assert rebuilt == index


@given(data=st.data(), domain_size=st.integers(1, 60))
def test_similarity_is_reflexive_and_symmetric(data, domain_size):
    domain = ValueDomain(0, domain_size - 1)
    a = StorageIndex.single_owner(1, domain, data.draw(owners_strategy(domain_size)))
    b = StorageIndex.single_owner(2, domain, data.draw(owners_strategy(domain_size)))
    assert a.similarity(a) == 1.0
    assert math.isclose(a.similarity(b), b.similarity(a))
    assert 0.0 <= a.similarity(b) <= 1.0


@given(data=st.data(), domain_size=st.integers(2, 60))
def test_owners_for_range_is_union_of_points(data, domain_size):
    domain = ValueDomain(0, domain_size - 1)
    owners = data.draw(owners_strategy(domain_size))
    index = StorageIndex.single_owner(1, domain, owners)
    lo = data.draw(st.integers(domain.lo, domain.hi))
    hi = data.draw(st.integers(lo, domain.hi))
    expected = {index.owner_of(v) for v in range(lo, hi + 1)}
    assert index.owners_for_range(lo, hi) == frozenset(expected)


# ----------------------------------------------------------------------
# Kernel properties
# ----------------------------------------------------------------------
@given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40))
def test_kernel_executes_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run(101.0)
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    delays=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=20),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=20),
)
def test_kernel_cancelled_events_never_fire(delays, cancel_mask):
    sim = Simulator()
    fired = []
    handles = []
    for i, d in enumerate(delays):
        handles.append(sim.schedule(d, fired.append, i))
    cancelled = set()
    for i, (handle, cancel) in enumerate(zip(handles, cancel_mask)):
        if cancel:
            handle.cancel()
            cancelled.add(i)
    sim.run(60.0)
    assert set(fired) == set(range(len(delays))) - cancelled


# ----------------------------------------------------------------------
# Data-survival properties (failure injection, E14)
# ----------------------------------------------------------------------
@given(
    data=st.data(),
    n_readings=st.integers(1, 30),
    n_nodes=st.integers(2, 8),
)
def test_killed_nodes_flash_never_counted_retrievable(data, n_readings, n_nodes):
    """Whatever the interleaving of stores, kills, and revivals: a reading
    stored on a node that is dark at query time is never retrievable, a
    reading on a live (or revived) node always is, and the breakdown's
    counts are consistent."""
    from repro.sim.metrics import DeliveryTracker

    tracker = DeliveryTracker()
    nodes = list(range(1, n_nodes + 1))
    stored_at: list = []
    for i in range(n_readings):
        producer = data.draw(st.sampled_from(nodes), label="producer")
        tracker.reading_produced(producer, value=i, time=float(i), intended_owner=None)
        if data.draw(st.booleans(), label="stored"):
            target = data.draw(st.sampled_from(nodes), label="stored_at")
            tracker.reading_stored(
                producer, i, float(i), stored_at=target, time=float(i)
            )
            stored_at.append(target)
        else:
            stored_at.append(None)
    killed = data.draw(
        st.lists(st.sampled_from(nodes), unique=True, max_size=n_nodes),
        label="killed",
    )
    revived = set()
    for node in killed:
        tracker.node_failed(node, time=100.0)
        if data.draw(st.booleans(), label="revived"):
            tracker.node_revived(node, time=150.0)
            revived.add(node)
    query_time = 200.0
    down = set(killed) - revived
    for outcome, target in zip(tracker.readings, stored_at):
        expected = target is not None and target not in down
        assert tracker.reading_retrievable(outcome, query_time) == expected
    breakdown = tracker.survival_breakdown(query_time)
    stored_count = sum(1 for t in stored_at if t is not None)
    orphaned = sum(1 for t in stored_at if t is not None and t in down)
    assert breakdown["readings_produced"] == n_readings
    assert breakdown["readings_stored"] == stored_count
    assert breakdown["stored_on_dead_node"] == orphaned
    assert breakdown["retrievable"] == stored_count - orphaned
    assert breakdown["completeness"] == (stored_count - orphaned) / n_readings
    # During the downtime window even later-revived nodes are dark.
    for outcome, target in zip(tracker.readings, stored_at):
        if target in killed:
            assert not tracker.reading_retrievable(outcome, 120.0)


# ----------------------------------------------------------------------
# Indexing algorithm property: argmin optimality (within tie tolerance)
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_nodes=st.integers(3, 8),
)
def test_index_choice_beats_uniform_alternatives(seed, n_nodes):
    """The built index never costs more than mapping everything to any
    single node, beyond the configured tie tolerance."""
    import random

    from repro.core.cost_model import NetworkModel
    from repro.core.indexing import build_storage_index, evaluate_index_cost
    from repro.core.messages import SummaryMessage
    from repro.core.statistics import BasestationStatistics

    rng = random.Random(seed)
    domain = ValueDomain(0, 19)
    config = ScoopConfig(n_nodes=n_nodes, domain=domain)
    stats = BasestationStatistics(config)
    for node in range(1, n_nodes):
        center = rng.randint(0, 19)
        values = [
            domain.clamp(center + rng.randint(-2, 2)) for _ in range(10)
        ]
        stats.ingest_summary(
            SummaryMessage(
                origin=node,
                histogram=Histogram.from_values(values, 5),
                min_value=min(values),
                max_value=max(values),
                sum_values=sum(values),
                readings_since_last=5,
                neighbors=((max(0, node - 1), rng.uniform(0.5, 0.95)),),
                last_sid=-1,
            ),
            now=10.0 + node,
        )
    for _ in range(rng.randint(0, 5)):
        lo = rng.randint(0, 15)
        stats.record_query((lo, lo + 3), now=rng.uniform(10, 200))
    model = NetworkModel.from_statistics(stats)
    result = build_storage_index(1, stats, model, config, now=300.0)
    chosen = evaluate_index_cost(result.index, stats, model, config, 300.0)
    for node in range(n_nodes):
        uniform = StorageIndex.uniform(9, domain, node)
        alternative = evaluate_index_cost(uniform, stats, model, config, 300.0)
        assert chosen <= alternative * (1 + config.index_tie_tolerance) + 1e-6
