"""Shared fixtures and helpers for the test suite."""

from typing import List, Optional, Tuple

import pytest

from repro.core.basestation import Basestation
from repro.core.config import ScoopConfig, ValueDomain
from repro.core.node import ScoopNode
from repro.sim.network import Network
from repro.sim.topology import Topology, perfect


def build_scoop_network(
    topology: Topology,
    config: Optional[ScoopConfig] = None,
    seed: int = 1,
    data_source=None,
    multi_source=None,
) -> Tuple[Network, Basestation, List[ScoopNode]]:
    """A fully wired Scoop network over ``topology`` (node 0 = base)."""
    config = config or ScoopConfig(n_nodes=topology.n, domain=ValueDomain(0, 100))
    net = Network(topology, seed=seed)
    base = Basestation(
        net.sim, net.radio, config, tracker=net.tracker, energy=net.energy
    )
    nodes = [
        ScoopNode(
            i,
            net.sim,
            net.radio,
            config,
            data_source=data_source,
            multi_source=multi_source,
            tracker=net.tracker,
            energy=net.energy,
        )
        for i in config.sensor_ids
    ]
    net.add_mote(base)
    for node in nodes:
        net.add_mote(node)
    return net, base, nodes


@pytest.fixture
def small_config():
    """A 6-node config with short timers for fast protocol tests."""
    return ScoopConfig(
        n_nodes=6,
        domain=ValueDomain(0, 100),
        sample_interval=5.0,
        query_interval=10.0,
        summary_interval=20.0,
        remap_interval=40.0,
        stabilization=60.0,
        duration=200.0,
        beacon_interval=5.0,
        query_reply_window=8.0,
    )


@pytest.fixture
def perfect6(small_config):
    """6 nodes, fully connected lossless radio, Scoop stack installed."""
    topo = perfect(6)
    return build_scoop_network(topo, config=small_config)
