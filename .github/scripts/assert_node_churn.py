"""Weekly-cron gate: shape assertions on the full-scale E14 export.

Reads the latest ``node_churn`` campaign export (written by
``REPRO_FULL=1 ... run node_churn --export``) and checks the churn
story's qualitative shape: the retrieval-completeness aggregate degrades
monotonically with the failure rate for both policies, SCOOP's planner
counters show dead owners' ranges being reassigned at a remap, and the
storage pipeline keeps landing readings rather than collapsing.
"""

import sys

from repro.experiments.export import latest_export, load_campaign_export

#: Cross-seed slack on adjacent-rate completeness comparisons (different
#: rates kill different node sets at different times).
MONOTONE_SLACK = 0.03


def main() -> int:
    path = latest_export("node_churn")
    assert path is not None, "no node_churn export found"
    doc = load_campaign_export(path)

    completeness = {}
    reassigned = 0
    stored = {}
    for trial in doc["trials"]:
        rate_part, policy = trial["label"].split("/")
        rate = float(rate_part.removeprefix("churn="))
        result = trial["result"]
        survival = result["metrics"]["survival"]
        assert survival, trial["label"]
        completeness.setdefault(policy, {}).setdefault(rate, []).append(
            survival["completeness"]
        )
        expect_failures = rate > 0
        assert (survival["nodes_failed"] > 0) == expect_failures, trial["label"]
        if policy == "scoop":
            stored.setdefault(rate, []).append(result["storage_success_rate"])
            if rate > 0:
                reassigned += result["metrics"]["planner"].get(
                    "owners_reassigned", 0
                )

    assert set(completeness) == {"scoop", "local"}, sorted(completeness)
    means = {
        policy: {
            rate: sum(values) / len(values) for rate, values in by_rate.items()
        }
        for policy, by_rate in completeness.items()
    }
    rates = sorted(means["scoop"])
    assert rates[0] == 0.0 and len(rates) >= 3, rates
    for policy, by_rate in means.items():
        series = [by_rate[rate] for rate in rates]
        for a, b in zip(series, series[1:]):
            assert b <= a + MONOTONE_SLACK, (policy, series)
        assert series[-1] < series[0] - 0.05, (policy, series)
    assert reassigned > 0, "no SCOOP owner reassignment under churn"
    worst_stored = sum(stored[rates[-1]]) / len(stored[rates[-1]])
    assert worst_stored > 0.8, stored

    print(
        "node_churn shape OK:",
        {
            p: {rate: round(v, 2) for rate, v in by_rate.items()}
            for p, by_rate in means.items()
        },
        f"reassigned={reassigned} stored@max={worst_stored:.0%}",
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
