"""CI perf gate: fail on >20% simulator-throughput regressions.

Runs the kernel/trial benchmark (``benchmarks/bench_kernel.py``, RSS probes
skipped — CI runners share cores and RSS is stable anyway) and compares the
fresh numbers against the committed baseline in
``benchmarks/BENCH_kernel.json``:

* ``kernel.heap_events_per_sec`` — pure scheduling throughput;
* ``e13_smoke.trials_per_sec`` — one full 64-node SCOOP trial.

A fresh value below ``(1 - TOLERANCE)`` of the baseline fails the job.
CI virtualization is noisy, so the tolerance is deliberately wide (20%)
and the benchmark reports best-of-N; a genuine hot-path regression shows
up far beyond 20%, scheduler jitter does not.

Overrides:

* set the ``PERF_GATE_OVERRIDE`` environment variable (the workflow wires
  it to the ``perf-gate-override`` PR label) to demote failures to
  warnings — for intentional slowdowns, e.g. trading speed for fidelity;
* refresh the baseline alongside intentional changes with
  ``python benchmarks/bench_kernel.py --update-baseline --label "..."``.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT / "src"))

TOLERANCE = 0.20

#: (path into the bench document, human name) of each gated metric.
GATED = (
    (("kernel", "heap_events_per_sec"), "kernel heap events/sec"),
    (("e13_smoke", "trials_per_sec"), "E13 smoke trials/sec"),
)


def _lookup(doc: dict, path: tuple) -> float:
    value: object = doc
    for key in path:
        if not isinstance(value, dict) or key not in value:
            return 0.0
        value = value[key]
    return float(value)  # type: ignore[arg-type]


def main() -> int:
    import bench_kernel

    trajectory = bench_kernel.load_trajectory()
    baseline = trajectory.get("baseline")
    if not baseline:
        print("perf gate: no committed baseline in BENCH_kernel.json; skipping")
        return 0

    fresh = bench_kernel.run_bench(include_rss=False, trial_repeats=3)
    override = bool(os.environ.get("PERF_GATE_OVERRIDE"))

    failures = []
    for path, name in GATED:
        base = _lookup(baseline, path)
        now = _lookup(fresh, path)
        if base <= 0:
            print(f"perf gate: {name}: no baseline value, skipped")
            continue
        ratio = now / base
        status = "OK" if ratio >= 1.0 - TOLERANCE else "REGRESSION"
        print(f"perf gate: {name}: {now:,.1f} vs baseline {base:,.1f} "
              f"({ratio:.2f}x) {status}")
        if status == "REGRESSION":
            failures.append(name)

    if failures and override:
        print(f"perf gate: OVERRIDDEN ({', '.join(failures)}) — "
              "PERF_GATE_OVERRIDE is set")
        return 0
    if failures:
        print(
            f"perf gate: FAILED ({', '.join(failures)}). If the slowdown is "
            "intentional, apply the perf-gate-override label or refresh the "
            "baseline with bench_kernel.py --update-baseline.",
            file=sys.stderr,
        )
        return 1
    print("perf gate: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
