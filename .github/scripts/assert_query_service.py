"""CI gates for the E16 serving story.

Two modes:

* default — shape assertions on the full-scale campaign export.
* ``--serve REPORT [REPORT ...]`` — gate the *sharded socket* serving
  path: each REPORT is the JSON written by
  ``python -m repro.experiments serve query_service --loadtest FILE``
  (real worker processes, real TCP, concurrent clients). Checks per
  report: zero protocol errors, zero failed/malformed clients, every
  offered request answered or explicitly shed, and a per-shard metrics
  breakdown that actually covers the fleet (every shard served
  requests, a live worker pid, the tenant count adds up). Given several
  reports (e.g. ``--workers 1`` and ``--workers 2`` runs), their
  ``answers_digest`` values must be identical — the shard-determinism
  invariant over real sockets.
* ``--chaos REPORT [REPORT ...]`` (combinable with ``--serve``) — gate
  chaos runs (``--chaos-kill-worker``): the fault must actually have
  fired (a worker killed mid-load, ≥1 restart recorded in the shard
  scorecards) and the service must still have completed every offered
  request — zero failed clients, zero lost answers. Chaos reports are
  *excluded* from the ``--serve`` digest-identity set: a mid-run kill
  legitimately perturbs shed timing.

Default-mode detail — the campaign export checks the serving story's
qualitative shape, per policy across the offered-load sweep:

* tail latency degrades with load — p95 and p99 are monotone
  non-decreasing (within a cross-seed slack) and strictly worse at the
  top of the sweep than at the bottom. p50 is deliberately NOT gated:
  at high load the cache serves most requests at ~zero latency, so the
  median *improves* while the tails collapse — gating it would encode
  the wrong shape.
* the shed rate only ever rises with load, and at least one overloaded
  cell actually sheds;
* the answer cache earns its keep (hit rate > 0 wherever enough
  requests arrived to repeat a bucket);
* the ground-truth oracle stays clean — serving answers from a cache
  must never fabricate a reading (zero precision violations).
"""

import argparse
import json
import sys

from repro.experiments.export import latest_export, load_campaign_export

#: Cross-seed slack on adjacent-load latency comparisons, in simulated
#: seconds (different loads coalesce different request mixes).
LATENCY_SLACK_S = 2.0
#: Slack on adjacent-load shed-rate comparisons.
SHED_SLACK = 0.02


def mean(values):
    return sum(values) / len(values)


def check_serve_report(path: str) -> dict:
    """Gate one socket-loadtest report; returns it for cross-report
    digest comparison."""
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    label = report.get("label", path)
    counts = report["counts"]
    stats = report["stats"]

    assert counts["failed"] == 0, (label, report["errors"])
    assert counts["malformed"] == 0, (label, counts)
    offered = report["clients"] * report["requests_per_client"]
    assert counts["ok"] + counts["shed"] == offered, (label, counts)
    assert counts["ok"] > 0, (label, counts)

    # The wire stayed clean: no framing violations, no close-outs.
    protocol = stats["protocol"]
    assert protocol["protocol_errors"] == 0, (label, protocol)
    assert protocol["requests"] >= offered, (label, protocol)

    # Per-shard metrics cover the fleet.
    shards = stats["shards"]
    expected_shards = min(report["workers"], len(report["tenants"]))
    assert len(shards) == expected_shards, (label, sorted(shards))
    tenants_placed = 0
    for name, shard in sorted(shards.items()):
        assert shard["requests_served"] > 0, (label, name, shard)
        assert shard["worker_pid"] > 0, (label, name, shard)
        tenants_placed += int(shard["tenants"])
    assert tenants_placed == len(report["tenants"]), (label, shards)

    print(
        f"{label}: workers={report['workers']} shards={len(shards)} "
        f"ok={counts['ok']} shed={counts['shed']} "
        f"qps={report['qps']:.1f} digest={report['answers_digest'][:12]}"
    )
    return report


def check_chaos_report(path: str) -> dict:
    """Gate one chaos-loadtest report: the kill fired, the supervisor
    recovered, and no answer was lost."""
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    label = report.get("label", path)
    counts = report["counts"]
    chaos = report.get("chaos", {})

    assert chaos.get("fired"), (label, chaos)
    assert chaos.get("killed"), (label, chaos)

    # Zero lost answers: every offered request was answered or shed;
    # no client gave up (the retry policy must have absorbed the kill).
    offered = report["clients"] * report["requests_per_client"]
    assert counts["failed"] == 0, (label, report["errors"])
    assert counts["malformed"] == 0, (label, counts)
    assert counts["ok"] + counts["shed"] == offered, (label, counts)

    # The supervisor recorded the recovery.
    shards = report["stats"]["shards"]
    restarts = sum(s.get("restarts", 0) for s in shards.values())
    replacements = sum(s.get("replacements", 0) for s in shards.values())
    assert restarts >= 1 or replacements >= 1, (label, shards)
    killed = shards.get(chaos["killed"], {})
    assert killed.get("last_exit", 0) != 0, (label, chaos["killed"], killed)

    print(
        f"{label} (chaos): killed={chaos['killed']} "
        f"ok={counts['ok']} shed={counts['shed']} "
        f"retried={counts.get('retried', 0)} restarts={restarts:.0f}"
    )
    return report


def main_serve(paths, chaos_paths=()) -> int:
    reports = [check_serve_report(path) for path in paths]
    if reports:
        digests = {r["answers_digest"] for r in reports}
        assert len(digests) == 1, {
            r.get("label", i): r["answers_digest"]
            for i, r in enumerate(reports)
        }
        print(
            f"serve reports OK ({len(reports)} report(s), digests identical)"
        )
    for path in chaos_paths:
        check_chaos_report(path)
    if chaos_paths:
        print(f"chaos reports OK ({len(chaos_paths)} report(s))")
    return 0


def main() -> int:
    path = latest_export("query_service")
    assert path is not None, "no query_service export found"
    doc = load_campaign_export(path)

    by_policy = {}
    for trial in doc["trials"]:
        qps_part, policy = trial["label"].split("/")
        qps = float(qps_part.removeprefix("qps="))
        result = trial["result"]
        service = result["metrics"]["service"]
        assert service, trial["label"]
        oracle = result["metrics"]["oracle"]
        assert oracle.get("precision_violations", 0) == 0, (
            trial["label"],
            oracle,
        )
        assert service["requests_offered"] > 0, trial["label"]
        cell = by_policy.setdefault(policy, {}).setdefault(qps, [])
        cell.append(service)

    assert set(by_policy) == {"scoop", "local"}, sorted(by_policy)
    some_shed = False
    some_hits = False
    for policy, by_qps in by_policy.items():
        loads = sorted(by_qps)
        assert len(loads) >= 3, (policy, loads)
        for metric in ("latency_p95_s", "latency_p99_s"):
            series = [mean([s[metric] for s in by_qps[q]]) for q in loads]
            for a, b in zip(series, series[1:]):
                assert b >= a - LATENCY_SLACK_S, (policy, metric, series)
            assert series[-1] > series[0], (policy, metric, series)
        shed = [mean([s["shed_rate"] for s in by_qps[q]]) for q in loads]
        for a, b in zip(shed, shed[1:]):
            assert b >= a - SHED_SLACK, (policy, shed)
        some_shed = some_shed or shed[-1] > 0
        hits = [mean([s["cache_hit_rate"] for s in by_qps[q]]) for q in loads]
        some_hits = some_hits or any(rate > 0 for rate in hits)
        print(
            f"{policy}: p95={[round(v, 1) for v in [mean([s['latency_p95_s'] for s in by_qps[q]]) for q in loads]]} "
            f"shed={[round(v, 2) for v in shed]} "
            f"hit={[round(v, 2) for v in hits]}"
        )
    assert some_shed, "no cell sheds: the sweep never saturates the service"
    assert some_hits, "cache hit rate is 0 everywhere: the answer cache is dead"

    print("query_service shape OK")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--serve",
        nargs="+",
        metavar="REPORT",
        help="gate socket-loadtest JSON report(s) instead of the "
        "campaign export; several reports must agree on answers_digest",
    )
    parser.add_argument(
        "--chaos",
        nargs="+",
        metavar="REPORT",
        help="gate chaos-loadtest report(s) (--chaos-kill-worker runs): "
        "kill fired, >=1 restart recorded, zero lost answers; excluded "
        "from the --serve digest-identity comparison",
    )
    cli_args = parser.parse_args()
    if cli_args.serve or cli_args.chaos:
        sys.exit(main_serve(cli_args.serve or (), cli_args.chaos or ()))
    sys.exit(main())
