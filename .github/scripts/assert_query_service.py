"""Weekly-cron gate: shape assertions on the full-scale E16 export.

Reads the latest ``query_service`` campaign export (written by
``REPRO_FULL=1 ... run query_service --export``) and checks the serving
story's qualitative shape, per policy across the offered-load sweep:

* tail latency degrades with load — p95 and p99 are monotone
  non-decreasing (within a cross-seed slack) and strictly worse at the
  top of the sweep than at the bottom. p50 is deliberately NOT gated:
  at high load the cache serves most requests at ~zero latency, so the
  median *improves* while the tails collapse — gating it would encode
  the wrong shape.
* the shed rate only ever rises with load, and at least one overloaded
  cell actually sheds;
* the answer cache earns its keep (hit rate > 0 wherever enough
  requests arrived to repeat a bucket);
* the ground-truth oracle stays clean — serving answers from a cache
  must never fabricate a reading (zero precision violations).
"""

import sys

from repro.experiments.export import latest_export, load_campaign_export

#: Cross-seed slack on adjacent-load latency comparisons, in simulated
#: seconds (different loads coalesce different request mixes).
LATENCY_SLACK_S = 2.0
#: Slack on adjacent-load shed-rate comparisons.
SHED_SLACK = 0.02


def mean(values):
    return sum(values) / len(values)


def main() -> int:
    path = latest_export("query_service")
    assert path is not None, "no query_service export found"
    doc = load_campaign_export(path)

    by_policy = {}
    for trial in doc["trials"]:
        qps_part, policy = trial["label"].split("/")
        qps = float(qps_part.removeprefix("qps="))
        result = trial["result"]
        service = result["metrics"]["service"]
        assert service, trial["label"]
        oracle = result["metrics"]["oracle"]
        assert oracle.get("precision_violations", 0) == 0, (
            trial["label"],
            oracle,
        )
        assert service["requests_offered"] > 0, trial["label"]
        cell = by_policy.setdefault(policy, {}).setdefault(qps, [])
        cell.append(service)

    assert set(by_policy) == {"scoop", "local"}, sorted(by_policy)
    some_shed = False
    some_hits = False
    for policy, by_qps in by_policy.items():
        loads = sorted(by_qps)
        assert len(loads) >= 3, (policy, loads)
        for metric in ("latency_p95_s", "latency_p99_s"):
            series = [mean([s[metric] for s in by_qps[q]]) for q in loads]
            for a, b in zip(series, series[1:]):
                assert b >= a - LATENCY_SLACK_S, (policy, metric, series)
            assert series[-1] > series[0], (policy, metric, series)
        shed = [mean([s["shed_rate"] for s in by_qps[q]]) for q in loads]
        for a, b in zip(shed, shed[1:]):
            assert b >= a - SHED_SLACK, (policy, shed)
        some_shed = some_shed or shed[-1] > 0
        hits = [mean([s["cache_hit_rate"] for s in by_qps[q]]) for q in loads]
        some_hits = some_hits or any(rate > 0 for rate in hits)
        print(
            f"{policy}: p95={[round(v, 1) for v in [mean([s['latency_p95_s'] for s in by_qps[q]]) for q in loads]]} "
            f"shed={[round(v, 2) for v in shed]} "
            f"hit={[round(v, 2) for v in hits]}"
        )
    assert some_shed, "no cell sheds: the sweep never saturates the service"
    assert some_hits, "cache hit rate is 0 everywhere: the answer cache is dead"

    print("query_service shape OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
