"""CI gate for the cache-replay step.

Run after two consecutive ``run smoke --seeds 2 --export`` invocations:
the first export must record six executed trials, the second must be
served entirely from the persistent result cache (0 executed, 6 hits)
with every trial's metric breakdown intact. Asserting on the JSON export
replaces the old ``grep`` of CLI stdout, which silently passed when the
pipeline's first command failed.
"""

import sys

from repro.experiments.export import list_exports, load_campaign_export


def main() -> int:
    exports = list_exports("smoke")
    assert len(exports) == 2, f"expected 2 smoke exports, found {exports}"
    first = load_campaign_export(exports[0])
    replay = load_campaign_export(exports[-1])
    assert first["execution"]["executed"] == 6, first["execution"]
    assert replay["execution"]["executed"] == 0, replay["execution"]
    assert replay["execution"]["cached"] == 6, replay["execution"]
    assert first["cache_salt"] == replay["cache_salt"]
    for trial in replay["trials"]:
        metrics = trial["result"]["metrics"]
        assert metrics["messages_sent"], trial["label"]
        assert metrics["energy_j"]["radio_tx"] > 0, trial["label"]
        total = trial["result"]["total_messages"]
        assert sum(trial["result"]["breakdown"].values()) == total, trial["label"]
    for label in replay["labels"]:
        assert {"mean", "stdev", "ci95"} <= set(label["total"]), label
    print("cache replay OK:", replay["execution"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
