"""Weekly-cron gate: shape assertions on the full-scale E15 export.

Reads the latest ``multi_attribute`` campaign export (written by
``REPRO_FULL=1 ... run multi_attribute --export``) and checks the
multi-attribute cost story's qualitative shape:

* SCOOP undercuts LOCAL in every (k, policy) cell;
* SCOOP's per-attribute message cost grows **sublinearly** in k
  (total and, more strongly, the shared summary+mapping maintenance),
  because k histogram blocks ride one summary packet and k indexes ride
  one Trickle epoch;
* LOCAL's broadcast floods keep growing ~linearly with the k× query
  stream — nothing to amortize;
* every simulated cell carries per-attribute counters for all of its k
  attributes, and the ground-truth oracle reports zero precision
  violations everywhere plus paper-consistent recall for SCOOP.
"""

import sys
from collections import defaultdict

from repro.experiments.export import latest_export, load_campaign_export

#: SCOOP's mean total at k must stay below this fraction of k times its
#: k=1 mean (sublinear with margin).
SUBLINEAR_MARGIN = 0.9

#: LOCAL's largest-k mean must exceed this multiple of its k=1 mean.
LOCAL_GROWTH_FLOOR = 2.0

#: Full-scale oracle recall floor (tuple-weighted) for SCOOP, every
#: cell — consistent with the paper's ~78% query-retrieval regime once
#: trials run at paper scale; already cleared at smoke scale.
RECALL_FLOOR = 0.6


def main() -> int:
    path = latest_export("multi_attribute")
    assert path is not None, "no multi_attribute export found"
    doc = load_campaign_export(path)

    totals = defaultdict(lambda: defaultdict(list))
    maintenance = defaultdict(list)
    recalls = defaultdict(list)
    for trial in doc["trials"]:
        k_part, policy = trial["label"].split("/")
        k = int(k_part.removeprefix("k="))
        result = trial["result"]
        totals[policy][k].append(result["total_messages"])
        metrics = result["metrics"]
        assert metrics, trial["label"]
        # per-attribute counters for every registered attribute
        assert set(metrics["attributes"]) == {f"a{a}" for a in range(k)}, (
            trial["label"],
            sorted(metrics["attributes"]),
        )
        for row in metrics["attributes"].values():
            assert row["readings_produced"] > 0, trial["label"]
        # the oracle never sees a fabricated or mis-indexed reading
        assert metrics["oracle"]["precision_violations"] == 0, trial["label"]
        if policy == "scoop":
            breakdown = result["breakdown"]
            maintenance[k].append(breakdown["summary"] + breakdown["mapping"])
            recalls[k].append(metrics["oracle"]["recall_weighted"])
            for attr in range(k):
                assert metrics["planner"].get(f"a{attr}.index_builds", 0) > 0, (
                    trial["label"],
                    attr,
                )

    assert set(totals) == {"scoop", "local", "hash"}, sorted(totals)
    ks = sorted(totals["scoop"])
    assert ks[0] == 1 and len(ks) >= 3, ks

    def mean(xs):
        return sum(xs) / len(xs)

    for k in ks:
        assert mean(totals["scoop"][k]) < mean(totals["local"][k]), k
        assert mean(recalls[k]) >= RECALL_FLOOR, (k, recalls[k])
        if k > 1:
            assert mean(totals["scoop"][k]) < SUBLINEAR_MARGIN * k * mean(
                totals["scoop"][1]
            ), (k, totals["scoop"])
            assert mean(maintenance[k]) < SUBLINEAR_MARGIN * k * mean(
                maintenance[1]
            ), (k, maintenance)
    assert mean(totals["local"][ks[-1]]) >= LOCAL_GROWTH_FLOOR * mean(
        totals["local"][1]
    ), totals["local"]

    print(
        "multi_attribute shape OK:",
        {
            policy: {k: round(mean(v)) for k, v in by_k.items()}
            for policy, by_k in totals.items()
        },
        f"scoop recall={[round(mean(recalls[k]), 2) for k in ks]}",
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
