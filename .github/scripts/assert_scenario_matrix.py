"""Nightly scenario-matrix gate: registry coverage + cache replay.

Run after the matrix job executed every registered scenario twice (each
``run <scenario> --seeds 2 --export``). Asserts, per scenario from the
live registry — never a hand-kept list, so a newly registered scenario
that the matrix somehow skipped fails here:

* at least two exports exist (first run + replay);
* the replay executed zero trials and served everything from the
  persistent result cache, under the same code salt;
* simulated trials carry their metric breakdowns intact.

The first run is *not* required to have executed anything itself: the
matrix shares one cache across scenarios, and scenarios legitimately
overlap (``loss_rates``' spec is ``fig3_middle``'s first trial), so an
earlier scenario may have simulated a later one's specs already. Identity
of specs means identity of the simulation, so the coverage claim holds
either way.
"""

import sys

from repro.experiments.export import list_exports, load_campaign_export
from repro.experiments.scenarios import scenario_names


def check_scenario(name: str) -> dict:
    exports = list_exports(name)
    assert len(exports) >= 2, f"{name}: expected run + replay exports, got {exports}"
    first = load_campaign_export(exports[0])
    replay = load_campaign_export(exports[-1])
    trials = replay["execution"]["trials"]
    assert trials > 0, f"{name}: empty campaign"
    assert first["execution"]["trials"] == trials, (name, first["execution"])
    assert replay["execution"]["executed"] == 0, (name, replay["execution"])
    assert replay["execution"]["cached"] == trials, (name, replay["execution"])
    assert first["cache_salt"] == replay["cache_salt"], name
    for trial in replay["trials"]:
        result = trial["result"]
        if not trial["analytical"]:
            assert result["metrics"], (name, trial["label"])
            assert result["metrics"]["messages_sent"], (name, trial["label"])
    return replay["execution"]


def main() -> int:
    names = scenario_names()
    # The matrix is registry-driven, so registering a scenario is all it
    # takes to be exercised nightly — assert the newest additions really
    # are discovered that way rather than via a hand-edited list.
    assert "node_churn" in names, names
    assert "multi_attribute" in names, names
    assert "query_service" in names, names
    for name in names:
        execution = check_scenario(name)
        print(f"{name}: replayed {execution['cached']} trials from cache")
    print(f"scenario matrix OK: {len(names)} scenarios")
    return 0


if __name__ == "__main__":
    sys.exit(main())
