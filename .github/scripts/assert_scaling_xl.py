"""Weekly-cron gate: shape assertions on the full-scale E13 export.

Reads the latest ``scaling_xl`` campaign export (written by
``REPRO_FULL=1 ... run scaling_xl --export``) and checks the grid's
qualitative shape at paper scale: cost grows with population for both
policies, the index keeps beating the flood at every size, the storage
pipeline survives 256 nodes, and every trial really ran under the
widened 256-node capacity (32-byte query bitmap).
"""

import sys

from repro.experiments.export import latest_export, load_campaign_export


def main() -> int:
    path = latest_export("scaling_xl")
    assert path is not None, "no scaling_xl export found"
    doc = load_campaign_export(path)

    series = {}
    for entry in doc["labels"]:
        size_part, policy = entry["label"].split("/")
        n = int(size_part.removeprefix("n="))
        series.setdefault(policy, {})[n] = entry["total"]["mean"]
    assert set(series) == {"scoop", "local"}, sorted(series)
    sizes = sorted(series["scoop"])
    assert sizes[-1] == 256, sizes
    for policy, by_n in series.items():
        totals = [by_n[n] for n in sizes]
        assert all(a < b for a, b in zip(totals, totals[1:])), (policy, totals)
    for n in sizes:
        assert series["scoop"][n] < series["local"][n], n

    stored_at_max = []
    for trial in doc["trials"]:
        scoop_cfg = trial["result"]["spec"]["scoop"]
        assert scoop_cfg["max_network_size"] == 256, trial["label"]
        if trial["label"] == f"n={sizes[-1]}/scoop":
            stored_at_max.append(trial["result"]["storage_success_rate"])
    assert stored_at_max, "no 256-node scoop trials in export"
    mean_stored = sum(stored_at_max) / len(stored_at_max)
    assert mean_stored > 0.75, stored_at_max
    print(
        "scaling_xl shape OK:",
        {p: {n: round(v) for n, v in by_n.items()} for p, by_n in series.items()},
        f"stored@256={mean_stored:.0%}",
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
