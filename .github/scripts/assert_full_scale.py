"""Weekly-cron gate: paper-shape assertions on the full-scale E2 export.

Reads the latest ``fig3_middle`` campaign export (written by
``REPRO_FULL=1 ... run fig3_middle --export``) and checks the figure's
qualitative shape at paper scale — SCOOP cheapest by a wide margin, HASH
within an order of magnitude of BASE — catching scale-dependent
regressions the down-scaled tier-1 runs cannot see.
"""

import sys

from repro.experiments.export import latest_export, load_campaign_export


def main() -> int:
    path = latest_export("fig3_middle")
    assert path is not None, "no fig3_middle export found"
    doc = load_campaign_export(path)
    means = {
        entry["label"].split("/")[0]: entry["total"]["mean"]
        for entry in doc["labels"]
    }
    assert set(means) == {"scoop", "local", "hash", "base"}, means
    assert means["scoop"] < means["local"], means
    assert means["scoop"] < means["base"], means
    assert means["scoop"] < means["hash"], means
    assert 0.3 < means["hash"] / means["base"] < 3.0, means
    print("full-scale shape OK:", {k: round(v) for k, v in means.items()})
    return 0


if __name__ == "__main__":
    sys.exit(main())
